#include "storage/record_file.h"

#include <algorithm>
#include <functional>

#include "common/bytes.h"
#include "common/strings.h"
#include "storage/slotted_page.h"

namespace fieldrep {

namespace {
// Relocation stub tags. Real payloads start with a small type tag, so these
// values cannot collide.
constexpr uint16_t kForwardTag = 0xFFFF;  // stub at the original slot
constexpr uint16_t kMovedTag = 0xFFFE;    // relocated body elsewhere

bool IsReservedPrefix(const std::string& payload) {
  if (payload.size() < 2) return false;
  uint16_t tag = DecodeU16(reinterpret_cast<const uint8_t*>(payload.data()));
  return tag == kForwardTag || tag == kMovedTag;
}

std::string MakeForwardStub(const Oid& target) {
  std::string out;
  PutU16(&out, kForwardTag);
  PutU64(&out, target.Packed());
  return out;
}

std::string MakeMovedBody(const Oid& original, const std::string& payload) {
  std::string out;
  PutU16(&out, kMovedTag);
  PutU64(&out, original.Packed());
  out.append(payload);
  return out;
}

// Classifies a raw cell. Returns kForwardTag/kMovedTag, or 0 for a plain
// record.
uint16_t CellKind(const std::string& cell) {
  if (cell.size() < 2) return 0;
  uint16_t tag = DecodeU16(reinterpret_cast<const uint8_t*>(cell.data()));
  if (tag == kForwardTag || tag == kMovedTag) return tag;
  return 0;
}

Oid StubTarget(const std::string& cell) {
  return Oid::FromPacked(DecodeU64(
      reinterpret_cast<const uint8_t*>(cell.data()) + 2));
}
}  // namespace

RecordFile::RecordFile(BufferPool* pool, FileId file_id)
    : pool_(pool), file_id_(file_id) {}

Status RecordFile::CheckOid(const Oid& oid) const {
  if (!oid.valid() || oid.file_id != file_id_) {
    return Status::InvalidArgument(
        StringPrintf("oid %s does not belong to file %u",
                     oid.ToString().c_str(), file_id_));
  }
  return Status::OK();
}

Status RecordFile::AppendPage(PageId* page_id) {
  const PageId old_tail = last_page_.load(std::memory_order_relaxed);
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->NewPage(&guard));
  SlottedPage::Init(guard.data(), PageType::kHeap);
  SlottedPage page(guard.data());
  page.set_prev_page(old_tail);
  guard.MarkDirty();
  *page_id = guard.page_id();
  if (old_tail != kInvalidPageId) {
    PageGuard tail;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(old_tail, &tail));
    SlottedPage(tail.data()).set_next_page(*page_id);
    tail.MarkDirty();
  } else {
    first_page_.store(*page_id, std::memory_order_relaxed);
  }
  last_page_.store(*page_id, std::memory_order_relaxed);
  page_count_.fetch_add(1, std::memory_order_relaxed);
  MutexLock lock(chain_mu_);
  if (chain_complete_) chain_cache_.push_back(*page_id);
  return Status::OK();
}

void RecordFile::NoteChainPage(size_t pos, PageId page_id) const {
  if (pos < chain_cache_.size()) {
    if (chain_cache_[pos] == page_id) return;
    // Stale suffix (should not happen — chains only grow — but stay safe).
    chain_cache_.resize(pos);
    chain_complete_ = false;
  }
  if (pos == chain_cache_.size()) chain_cache_.push_back(page_id);
}

void RecordFile::NoteFreeSpace(PageId page_id) {
  for (PageId hint : free_hints_) {
    if (hint == page_id) return;
  }
  if (free_hints_.size() >= 64) {
    free_hints_.erase(free_hints_.begin());
  }
  free_hints_.push_back(page_id);
}

Status RecordFile::InsertCell(const std::string& payload, Oid* oid) {
  if (payload.size() + 64 > kUserBytesPerPage) {
    return Status::InvalidArgument(
        StringPrintf("record of %zu bytes exceeds page capacity",
                     payload.size()));
  }
  if (last_page() == kInvalidPageId) {
    PageId ignored;
    FIELDREP_RETURN_IF_ERROR(AppendPage(&ignored));
  }
  // Candidate pages: the tail page first, then recent free-space hints.
  const PageId tail = last_page();
  std::vector<PageId> candidates = {tail};
  for (auto it = free_hints_.rbegin(); it != free_hints_.rend(); ++it) {
    if (*it != tail) candidates.push_back(*it);
  }
  for (PageId candidate : candidates) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(candidate, &guard));
    SlottedPage page(guard.data());
    // Honour the growth reserve: leave room for every resident record
    // (including this one) to grow by growth_reserve_ bytes.
    bool room = true;
    if (growth_reserve_ > 0) {
      uint64_t needed = payload.size() + 4 +
                        static_cast<uint64_t>(growth_reserve_) *
                            (page.live_count() + 1);
      room = page.FreeSpace() >= needed;
    }
    int slot = room ? page.Insert(payload) : -1;
    if (slot >= 0) {
      guard.MarkDirty();
      *oid = Oid(file_id_, candidate, static_cast<uint16_t>(slot));
      return Status::OK();
    }
    if (candidate != tail) {
      // Hint is stale (page is effectively full); drop it.
      free_hints_.erase(
          std::remove(free_hints_.begin(), free_hints_.end(), candidate),
          free_hints_.end());
    }
  }
  PageId fresh;
  FIELDREP_RETURN_IF_ERROR(AppendPage(&fresh));
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(fresh, &guard));
  SlottedPage page(guard.data());
  int slot = page.Insert(payload);
  if (slot < 0) {
    return Status::Internal("fresh page rejected record");
  }
  guard.MarkDirty();
  *oid = Oid(file_id_, fresh, static_cast<uint16_t>(slot));
  return Status::OK();
}

Status RecordFile::Insert(const std::string& payload, Oid* oid) {
  if (IsReservedPrefix(payload)) {
    return Status::InvalidArgument(
        "record payload begins with a reserved stub tag");
  }
  FIELDREP_RETURN_IF_ERROR(InsertCell(payload, oid));
  ++record_count_;
  return Status::OK();
}

Status RecordFile::Read(const Oid& oid, std::string* payload) const {
  FIELDREP_RETURN_IF_ERROR(CheckOid(oid));
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(
      pool_->FetchPage(oid.page_id, &guard, LatchMode::kShared));
  SlottedPage page(guard.data());
  if (!page.ReadString(oid.slot, payload)) {
    return Status::NotFound("no record at " + oid.ToString());
  }
  uint16_t kind = CellKind(*payload);
  if (kind == 0) return Status::OK();
  if (kind == kMovedTag) {
    // Direct read of a relocated body: strip the relocation header.
    payload->erase(0, 10);
    return Status::OK();
  }
  // Forwarding stub: follow it (after releasing the stub page — readers
  // never hold a latch while blocking on another).
  Oid target = StubTarget(*payload);
  guard.Release();
  PageGuard body_guard;
  FIELDREP_RETURN_IF_ERROR(
      pool_->FetchPage(target.page_id, &body_guard, LatchMode::kShared));
  SlottedPage body_page(body_guard.data());
  if (!body_page.ReadString(target.slot, payload) ||
      CellKind(*payload) != kMovedTag) {
    return Status::Corruption("dangling forwarding stub at " + oid.ToString());
  }
  payload->erase(0, 10);
  return Status::OK();
}

Status RecordFile::Update(const Oid& oid, const std::string& payload) {
  FIELDREP_RETURN_IF_ERROR(CheckOid(oid));
  if (IsReservedPrefix(payload)) {
    return Status::InvalidArgument(
        "record payload begins with a reserved stub tag");
  }
  // Load the current cell to learn whether the record was relocated.
  std::string cell;
  Oid body_oid = oid;
  bool relocated = false;
  {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(oid.page_id, &guard));
    SlottedPage page(guard.data());
    if (!page.ReadString(oid.slot, &cell)) {
      return Status::NotFound("no record at " + oid.ToString());
    }
    uint16_t kind = CellKind(cell);
    if (kind == kForwardTag) {
      body_oid = StubTarget(cell);
      relocated = true;
    } else if (kind == kMovedTag) {
      return Status::InvalidArgument(
          "update must address a record's logical oid, not its body");
    } else {
      // Common case: try the in-place update right here.
      if (page.Update(oid.slot, payload)) {
        guard.MarkDirty();
        return Status::OK();
      }
    }
  }

  if (relocated) {
    // Try updating the relocated body in place.
    std::string body = MakeMovedBody(oid, payload);
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(body_oid.page_id, &guard));
    SlottedPage page(guard.data());
    if (page.Update(body_oid.slot, reinterpret_cast<const uint8_t*>(
                                       body.data()),
                    static_cast<uint32_t>(body.size()))) {
      guard.MarkDirty();
      return Status::OK();
    }
    // Body must move again: delete old body, insert a new one, repoint the
    // stub (the stub rewrite is same-size, so it cannot fail for space).
    page.Delete(body_oid.slot);
    guard.MarkDirty();
    guard.Release();
    NoteFreeSpace(body_oid.page_id);
    Oid new_body;
    FIELDREP_RETURN_IF_ERROR(InsertCell(body, &new_body));
    PageGuard stub_guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(oid.page_id, &stub_guard));
    SlottedPage stub_page(stub_guard.data());
    if (!stub_page.Update(oid.slot, MakeForwardStub(new_body))) {
      return Status::Internal("failed to repoint forwarding stub");
    }
    stub_guard.MarkDirty();
    return Status::OK();
  }

  // The record outgrew its page: relocate the body and leave a stub.
  Oid body;
  FIELDREP_RETURN_IF_ERROR(InsertCell(MakeMovedBody(oid, payload), &body));
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(oid.page_id, &guard));
  SlottedPage page(guard.data());
  if (!page.Update(oid.slot, MakeForwardStub(body))) {
    return Status::Internal(
        "page cannot hold a 10-byte forwarding stub for " + oid.ToString());
  }
  guard.MarkDirty();
  return Status::OK();
}

Status RecordFile::Delete(const Oid& oid) {
  FIELDREP_RETURN_IF_ERROR(CheckOid(oid));
  std::string cell;
  PageGuard guard;
  FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(oid.page_id, &guard));
  SlottedPage page(guard.data());
  if (!page.ReadString(oid.slot, &cell)) {
    return Status::NotFound("no record at " + oid.ToString());
  }
  uint16_t kind = CellKind(cell);
  if (kind == kMovedTag) {
    return Status::InvalidArgument(
        "delete must address a record's logical oid, not its body");
  }
  page.Delete(oid.slot);
  guard.MarkDirty();
  guard.Release();
  NoteFreeSpace(oid.page_id);
  if (kind == kForwardTag) {
    Oid body = StubTarget(cell);
    PageGuard body_guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(body.page_id, &body_guard));
    SlottedPage body_page(body_guard.data());
    if (!body_page.Delete(body.slot)) {
      return Status::Corruption("dangling forwarding stub at " +
                                oid.ToString());
    }
    body_guard.MarkDirty();
    NoteFreeSpace(body.page_id);
  }
  --record_count_;
  return Status::OK();
}

Status RecordFile::Scan(
    const std::function<bool(const Oid&, const std::string&)>& fn) const {
  PageId current = first_page();
  std::string payload;
  const uint32_t window = pool_->read_ahead_window();
  size_t pos = 0;  // position of `current` in the chain
  std::vector<PageId> ahead_pages;
  std::vector<std::pair<Oid, std::string>> page_records;
  while (current != kInvalidPageId) {
    {
      MutexLock lock(chain_mu_);
      NoteChainPage(pos, current);
      // Read ahead: one window of upcoming chain pages per window of
      // progress. On the first scan after reopen the cache only reaches
      // the cursor, so nothing is prefetched — identical to window=0 —
      // and every later scan batches its reads. Copy the window out so
      // the prefetch itself runs without chain_mu_.
      if (window > 0 && pos % window == 0 && pos + 1 < chain_cache_.size()) {
        size_t ahead = std::min<size_t>(window, chain_cache_.size() - pos - 1);
        ahead_pages.assign(chain_cache_.begin() + pos + 1,
                           chain_cache_.begin() + pos + 1 + ahead);
      }
    }
    if (!ahead_pages.empty()) {
      FIELDREP_RETURN_IF_ERROR(pool_->Prefetch(ahead_pages));
      ahead_pages.clear();
    }
    // Collect the page's records under the (shared) latch, then run the
    // callbacks after releasing it: a callback may fetch other pages, and
    // readers must never block while holding a latch.
    page_records.clear();
    {
      PageGuard guard;
      FIELDREP_RETURN_IF_ERROR(
          pool_->FetchPage(current, &guard, LatchMode::kShared));
      SlottedPage page(guard.data());
      uint16_t n = page.slot_count();
      for (uint16_t slot = 0; slot < n; ++slot) {
        if (!page.IsLive(slot)) continue;
        if (!page.ReadString(slot, &payload)) continue;
        uint16_t kind = CellKind(payload);
        if (kind == kForwardTag) continue;  // body visited where it lives
        Oid oid(file_id_, current, slot);
        if (kind == kMovedTag) {
          oid = StubTarget(payload);  // logical oid embedded in the body
          payload.erase(0, 10);
        }
        page_records.emplace_back(oid, payload);
      }
      current = page.next_page();
    }
    for (const auto& [oid, record] : page_records) {
      if (!fn(oid, record)) return Status::OK();
    }
    ++pos;
  }
  // Walked the whole chain: the cache now covers it and AppendPage may
  // extend it incrementally.
  MutexLock lock(chain_mu_);
  chain_complete_ = true;
  return Status::OK();
}

Status RecordFile::ListOids(std::vector<Oid>* oids) const {
  oids->clear();
  return Scan([oids](const Oid& oid, const std::string&) {
    oids->push_back(oid);
    return true;
  });
}

Status RecordFile::Truncate() {
  PageId current = first_page();
  while (current != kInvalidPageId) {
    PageGuard guard;
    FIELDREP_RETURN_IF_ERROR(pool_->FetchPage(current, &guard));
    SlottedPage page(guard.data());
    PageId next = page.next_page();
    SlottedPage::Init(guard.data(), PageType::kFree);
    guard.MarkDirty();
    current = next;
  }
  first_page_.store(kInvalidPageId, std::memory_order_relaxed);
  last_page_.store(kInvalidPageId, std::memory_order_relaxed);
  page_count_.store(0, std::memory_order_relaxed);
  record_count_.store(0, std::memory_order_relaxed);
  free_hints_.clear();
  MutexLock lock(chain_mu_);
  chain_cache_.clear();
  chain_complete_ = true;
  return Status::OK();
}

std::string RecordFile::EncodeMetadata() const {
  std::string out;
  PutU32(&out, first_page());
  PutU32(&out, last_page());
  PutU32(&out, page_count());
  PutU64(&out, record_count());
  return out;
}

Status RecordFile::DecodeMetadata(const std::string& encoded) {
  ByteReader reader(encoded);
  uint32_t first, last, pages;
  uint64_t records;
  if (!reader.GetU32(&first) || !reader.GetU32(&last) ||
      !reader.GetU32(&pages) || !reader.GetU64(&records)) {
    return Status::Corruption("bad RecordFile metadata");
  }
  first_page_.store(first, std::memory_order_relaxed);
  last_page_.store(last, std::memory_order_relaxed);
  page_count_.store(pages, std::memory_order_relaxed);
  record_count_.store(records, std::memory_order_relaxed);
  // The chain must be rediscovered by walking it; the first Scan does so.
  MutexLock lock(chain_mu_);
  chain_cache_.clear();
  chain_complete_ = (first == kInvalidPageId);
  return Status::OK();
}

}  // namespace fieldrep
