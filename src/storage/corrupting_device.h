#ifndef FIELDREP_STORAGE_CORRUPTING_DEVICE_H_
#define FIELDREP_STORAGE_CORRUPTING_DEVICE_H_

#include "common/status.h"
#include "storage/storage_device.h"

namespace fieldrep {

/// \brief Pass-through StorageDevice wrapper with a fault-injection API
/// (test support for the integrity checker).
///
/// All I/O is forwarded to the wrapped device; CorruptByte() reaches past
/// any open database and flips bits directly in the stored page image,
/// simulating media corruption. Callers that want the damage to *survive*
/// debug-build read verification (so a structural check above the storage
/// layer gets to see it) restamp the page checksum afterwards with
/// RestampChecksum().
class CorruptingDevice : public StorageDevice {
 public:
  /// \param inner wrapped device (not owned).
  explicit CorruptingDevice(StorageDevice* inner) : inner_(inner) {}

  CorruptingDevice(const CorruptingDevice&) = delete;
  CorruptingDevice& operator=(const CorruptingDevice&) = delete;

  Status ReadPage(PageId page_id, void* buf) override {
    return inner_->ReadPage(page_id, buf);
  }
  Status WritePage(PageId page_id, const void* buf) override {
    return inner_->WritePage(page_id, buf);
  }
  Status AllocatePage(PageId* page_id) override {
    return inner_->AllocatePage(page_id);
  }
  Status Sync() override { return inner_->Sync(); }
  uint32_t page_count() const override { return inner_->page_count(); }

  /// XORs `mask` into byte `offset` of the stored image of `page_id`
  /// (read-modify-write through the wrapped device).
  Status CorruptByte(PageId page_id, uint32_t offset, uint8_t mask);

  /// Overwrites `len` bytes at `offset` of the stored image.
  Status OverwriteBytes(PageId page_id, uint32_t offset, const void* bytes,
                        uint32_t len);

  /// Recomputes and stores the page checksum of `page_id`, making prior
  /// corruption self-consistent (checksum-valid but structurally wrong).
  Status RestampChecksum(PageId page_id);

 private:
  StorageDevice* inner_;
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_CORRUPTING_DEVICE_H_
