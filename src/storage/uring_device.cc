#include "storage/uring_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "telemetry/metrics.h"

// The raw-syscall backend: the container bakes in <linux/io_uring.h> but not
// liburing, so the ring is driven through io_uring_setup/io_uring_enter and
// mmap directly. FIELDREP_HAVE_IO_URING comes from CMake (option
// FIELDREP_WITH_URING + header check); the __NR guards cover exotic libcs
// whose <sys/syscall.h> predates io_uring.
#if defined(__linux__) && defined(FIELDREP_HAVE_IO_URING)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#if defined(__NR_io_uring_setup) && defined(__NR_io_uring_enter)
#define FIELDREP_URING_RING 1
#endif
#endif

#ifndef FIELDREP_URING_RING
#define FIELDREP_URING_RING 0
#endif

namespace fieldrep {

namespace {

[[maybe_unused]] uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// CQE latency buckets share the telemetry Histogram's latency ladder so the
// exposition is comparable with every other latency metric in the engine.
const std::vector<uint64_t>& CqeLatencyBounds() {
  static const std::vector<uint64_t> bounds = Histogram::LatencyBoundsNs();
  return bounds;
}

#if FIELDREP_URING_RING

// user_data of wake-up NOPs (reaper shutdown); never a pending-table slot.
constexpr uint64_t kNopUserData = ~0ull;

int IoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int IoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                 unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                  min_complete, flags, nullptr, 0));
}

#endif  // FIELDREP_URING_RING

}  // namespace

/// One async batch: per-page statuses filled in as CQEs arrive; the last
/// completion (remaining -> 0) hands the batch to the done callback. The
/// page-id/buffer vectors live here so they outlive the submitting call.
struct UringDevice::BatchState {
  std::vector<PageId> page_ids;
  std::vector<uint8_t*> rbufs;
  std::vector<const uint8_t*> wbufs;
  std::vector<Status> statuses;
  size_t remaining = 0;
  AsyncDone done;
};

/// Per-inflight-page state, indexed by SQE user_data. Slots are stable in
/// memory (the table never resizes), so `iov` can be pointed at by the SQE.
struct UringDevice::Pending {
  std::shared_ptr<BatchState> batch;
  uint32_t index = 0;  ///< Position in the batch.
  PageId page_id = kInvalidPageId;
  bool is_read = false;
  uint8_t* dest = nullptr;  ///< Caller's read buffer (copy-out when bounced).
  PageBuffer bounce;        ///< Aligned staging for unaligned caller buffers.
#if FIELDREP_URING_RING
  struct iovec iov {};
#endif
  uint64_t submit_ns = 0;
};

struct UringDevice::Ring {
#if FIELDREP_URING_RING
  int ring_fd = -1;

  // mmap regions (cq_map is null under IORING_FEAT_SINGLE_MMAP).
  uint8_t* sq_map = nullptr;
  size_t sq_map_sz = 0;
  uint8_t* cq_map = nullptr;
  size_t cq_map_sz = 0;
  struct io_uring_sqe* sqes = nullptr;
  size_t sqes_map_sz = 0;

  // Kernel-shared ring pointers (offsets resolved at setup).
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_array = nullptr;
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  struct io_uring_cqe* cqes = nullptr;
  unsigned cq_mask = 0;

  std::vector<Pending> pending;       // sized sq_entries; bounds inflight
  std::vector<uint32_t> free_slots;

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_map_sz);
    if (cq_map != nullptr) ::munmap(cq_map, cq_map_sz);
    if (sq_map != nullptr) ::munmap(sq_map, sq_map_sz);
    if (ring_fd >= 0) ::close(ring_fd);
  }
#endif  // FIELDREP_URING_RING
};

UringDevice::UringDevice() = default;

UringDevice::~UringDevice() { Close().ok(); }

bool UringDevice::KernelSupportsIoUring() {
#if FIELDREP_URING_RING
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  int fd = IoUringSetup(1, &params);
  if (fd < 0) return false;
  ::close(fd);
  return true;
#else
  return false;
#endif
}

Status UringDevice::Open(const std::string& path, const Options& options) {
  if (is_open()) {
    return Status::FailedPrecondition("device already open: " + path_);
  }
  int fd = -1;
  o_direct_ = false;
#ifdef O_DIRECT
  if (options.use_o_direct) {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_DIRECT, 0644);
    if (fd >= 0) o_direct_ = true;
    // On failure (filesystem refuses the flag) fall through to buffered.
  }
#endif
  if (fd < 0) {
    fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  }
  if (fd < 0) {
    return Status::IOError(
        StringPrintf("open(%s): %s", path.c_str(), std::strerror(errno)));
  }
  off_t size = ::lseek(fd, 0, SEEK_END);
  if (size < 0) {
    ::close(fd);
    return Status::IOError(
        StringPrintf("lseek(%s): %s", path.c_str(), std::strerror(errno)));
  }
  fd_ = fd;
  path_ = path;
  page_count_.store(static_cast<uint32_t>(size / kPageSize),
                    std::memory_order_relaxed);
  if (!options.force_fallback) {
    SetupRing(std::max(1u, options.ring_depth));
  }
  return Status::OK();
}

void UringDevice::SetupRing(unsigned ring_depth) {
#if FIELDREP_URING_RING
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  int rfd = IoUringSetup(ring_depth, &params);
  if (rfd < 0) return;  // old kernel / seccomp: stay in fallback mode

  auto ring = std::make_unique<Ring>();
  ring->ring_fd = rfd;
  size_t sq_sz = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  size_t cq_sz =
      params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
  const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) sq_sz = cq_sz = std::max(sq_sz, cq_sz);

  void* sq = ::mmap(nullptr, sq_sz, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, rfd, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) return;  // ~Ring closes rfd
  ring->sq_map = static_cast<uint8_t*>(sq);
  ring->sq_map_sz = sq_sz;

  uint8_t* cq = ring->sq_map;
  if (!single_mmap) {
    void* m = ::mmap(nullptr, cq_sz, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, rfd, IORING_OFF_CQ_RING);
    if (m == MAP_FAILED) return;
    ring->cq_map = static_cast<uint8_t*>(m);
    ring->cq_map_sz = cq_sz;
    cq = ring->cq_map;
  }

  size_t sqes_sz = params.sq_entries * sizeof(struct io_uring_sqe);
  void* sqes = ::mmap(nullptr, sqes_sz, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, rfd, IORING_OFF_SQES);
  if (sqes == MAP_FAILED) return;
  ring->sqes = static_cast<struct io_uring_sqe*>(sqes);
  ring->sqes_map_sz = sqes_sz;

  uint8_t* sqp = ring->sq_map;
  ring->sq_head = reinterpret_cast<unsigned*>(sqp + params.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sqp + params.sq_off.tail);
  ring->sq_mask =
      *reinterpret_cast<unsigned*>(sqp + params.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sqp + params.sq_off.array);
  ring->sq_entries = params.sq_entries;
  ring->cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  ring->cq_mask = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  ring->cqes =
      reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);

  ring->pending.resize(params.sq_entries);
  ring->free_slots.reserve(params.sq_entries);
  for (uint32_t slot = params.sq_entries; slot-- > 0;) {
    ring->free_slots.push_back(slot);
  }

  stop_ = false;
  ring_ = std::move(ring);
  reaper_ = std::thread(&UringDevice::ReaperLoop, this);
#else
  (void)ring_depth;
#endif
}

void UringDevice::TeardownRing() {
  if (ring_ == nullptr) return;
#if FIELDREP_URING_RING
  {
    UniqueMutexLock l(mu_);
    // Drain: every slot free means every CQE has been harvested, so no
    // completion callback can fire after this function returns.
    cv_.wait(l, [&] {
      return ring_->free_slots.size() == ring_->pending.size();
    });
    stop_ = true;
    // Wake the reaper out of its GETEVENTS wait with a NOP completion.
    unsigned tail = *ring_->sq_tail;
    unsigned idx = tail & ring_->sq_mask;
    struct io_uring_sqe* sqe = &ring_->sqes[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = IORING_OP_NOP;
    sqe->user_data = kNopUserData;
    ring_->sq_array[idx] = idx;
    __atomic_store_n(ring_->sq_tail, tail + 1, __ATOMIC_RELEASE);
    int rc;
    do {
      rc = IoUringEnter(ring_->ring_fd, 1, 0, 0);
    } while (rc < 0 && errno == EINTR);
  }
  reaper_.join();
  ring_.reset();  // ~Ring munmaps and closes the ring fd
#endif
}

Status UringDevice::Close() {
  if (!is_open()) return Status::OK();
  TeardownRing();
  int rc = ::close(fd_);
  fd_ = -1;
  if (rc != 0) {
    return Status::IOError(
        StringPrintf("close(%s): %s", path_.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Synchronous single-page path (plain pread/pwrite; O_DIRECT bounce).
// ---------------------------------------------------------------------------

Status UringDevice::SyncReadPage(PageId page_id, void* buf) {
  if (page_id >= page_count()) {
    return Status::OutOfRange(
        StringPrintf("read of unallocated page %u", page_id));
  }
  void* io_buf = buf;
  PageBuffer bounce;
  if (o_direct_ && reinterpret_cast<uintptr_t>(buf) % kPageSize != 0) {
    bounce = AllocatePageBuffer();
    io_buf = bounce.get();
    bounce_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  ssize_t n = ::pread(fd_, io_buf, kPageSize,
                      static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("pread page %u: %s", page_id,
                                        n < 0 ? std::strerror(errno)
                                              : "short read"));
  }
  if (bounce != nullptr) std::memcpy(buf, bounce.get(), kPageSize);
  return Status::OK();
}

Status UringDevice::SyncWritePage(PageId page_id, const void* buf) {
  if (page_id >= page_count()) {
    return Status::OutOfRange(
        StringPrintf("write of unallocated page %u", page_id));
  }
  const void* io_buf = buf;
  PageBuffer bounce;
  if (o_direct_ && reinterpret_cast<uintptr_t>(buf) % kPageSize != 0) {
    bounce = AllocatePageBuffer();
    std::memcpy(bounce.get(), buf, kPageSize);
    io_buf = bounce.get();
    bounce_copies_.fetch_add(1, std::memory_order_relaxed);
  }
  ssize_t n = ::pwrite(fd_, io_buf, kPageSize,
                       static_cast<off_t>(page_id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("pwrite page %u: %s", page_id,
                                        n < 0 ? std::strerror(errno)
                                              : "short write"));
  }
  return Status::OK();
}

Status UringDevice::ReadPage(PageId page_id, void* buf) {
  return SyncReadPage(page_id, buf);
}

Status UringDevice::WritePage(PageId page_id, const void* buf) {
  return SyncWritePage(page_id, buf);
}

// ---------------------------------------------------------------------------
// Ring submission
// ---------------------------------------------------------------------------

void UringDevice::SubmitBatch(std::vector<PageId> page_ids,
                              std::vector<uint8_t*> rbufs,
                              std::vector<const uint8_t*> wbufs, bool is_read,
                              AsyncDone done) {
#if FIELDREP_URING_RING
  auto batch = std::make_shared<BatchState>();
  batch->page_ids = std::move(page_ids);
  batch->rbufs = std::move(rbufs);
  batch->wbufs = std::move(wbufs);
  const size_t n = batch->page_ids.size();
  batch->statuses.assign(n, Status::OK());
  batch->remaining = n;
  batch->done = std::move(done);
  if (n == 0) {
    batch->done(batch->statuses);
    return;
  }

  bool dispatch_now = false;
  {
    UniqueMutexLock l(mu_);
    unsigned queued = 0;
    std::vector<uint32_t> queued_slots;

    // Pushes the queued SQEs into the kernel. On a hard submission error
    // the un-consumed tail is rolled back and those pages complete with
    // IOError (the kernel consumes nothing on a failed enter, so rolling
    // the tail back by the un-submitted count is exact).
    auto flush = [&]() {
      if (queued == 0) return;
      sqe_batches_.fetch_add(1, std::memory_order_relaxed);
      unsigned submitted = 0;
      Status enter_error;
      while (submitted < queued) {
        int rc = IoUringEnter(ring_->ring_fd, queued - submitted, 0, 0);
        if (rc < 0) {
          if (errno == EINTR || errno == EAGAIN) continue;
          enter_error = Status::IOError(StringPrintf(
              "io_uring_enter: %s", std::strerror(errno)));
          break;
        }
        submitted += static_cast<unsigned>(rc);
      }
      sqes_submitted_.fetch_add(submitted, std::memory_order_relaxed);
      if (!enter_error.ok()) {
        unsigned rollback = queued - submitted;
        __atomic_store_n(ring_->sq_tail, *ring_->sq_tail - rollback,
                         __ATOMIC_RELEASE);
        for (unsigned k = 0; k < rollback; ++k) {
          uint32_t slot = queued_slots[queued_slots.size() - 1 - k];
          Pending& p = ring_->pending[slot];
          auto owner = std::move(p.batch);
          owner->statuses[p.index] = enter_error;
          p.bounce.reset();
          ring_->free_slots.push_back(slot);
          inflight_.fetch_sub(1, std::memory_order_relaxed);
          if (--owner->remaining == 0 && owner == batch) dispatch_now = true;
        }
      }
      queued = 0;
      queued_slots.clear();
    };

    for (size_t i = 0; i < n; ++i) {
      PageId pid = batch->page_ids[i];
      if (pid >= page_count()) {
        batch->statuses[i] = Status::OutOfRange(
            StringPrintf("async %s of unallocated page %u",
                         is_read ? "read" : "write", pid));
        if (--batch->remaining == 0) dispatch_now = true;
        continue;
      }
      if (ring_->free_slots.empty()) {
        flush();  // before blocking: the awaited completions need these SQEs
        cv_.wait(l, [&] { return !ring_->free_slots.empty(); });
      }
      uint32_t slot = ring_->free_slots.back();
      ring_->free_slots.pop_back();
      Pending& p = ring_->pending[slot];
      p.batch = batch;
      p.index = static_cast<uint32_t>(i);
      p.page_id = pid;
      p.is_read = is_read;
      uint8_t* buf = is_read ? batch->rbufs[i]
                             : const_cast<uint8_t*>(batch->wbufs[i]);
      const bool need_bounce =
          o_direct_ && reinterpret_cast<uintptr_t>(buf) % kPageSize != 0;
      p.dest = is_read ? buf : nullptr;
      if (need_bounce) {
        p.bounce = AllocatePageBuffer();
        if (!is_read) std::memcpy(p.bounce.get(), buf, kPageSize);
        bounce_copies_.fetch_add(1, std::memory_order_relaxed);
      }
      p.iov.iov_base = need_bounce ? p.bounce.get() : buf;
      p.iov.iov_len = kPageSize;
      p.submit_ns = NowNs();

      unsigned tail = *ring_->sq_tail;
      unsigned idx = tail & ring_->sq_mask;
      struct io_uring_sqe* sqe = &ring_->sqes[idx];
      std::memset(sqe, 0, sizeof(*sqe));
      sqe->opcode = is_read ? IORING_OP_READV : IORING_OP_WRITEV;
      sqe->fd = fd_;
      sqe->off = static_cast<uint64_t>(pid) * kPageSize;
      sqe->addr = reinterpret_cast<uintptr_t>(&p.iov);
      sqe->len = 1;
      sqe->user_data = slot;
      ring_->sq_array[idx] = idx;
      __atomic_store_n(ring_->sq_tail, tail + 1, __ATOMIC_RELEASE);
      ++queued;
      queued_slots.push_back(slot);

      uint64_t inflight =
          inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t peak = inflight_peak_.load(std::memory_order_relaxed);
      while (inflight > peak &&
             !inflight_peak_.compare_exchange_weak(
                 peak, inflight, std::memory_order_relaxed)) {
      }
    }
    flush();
  }
  // Only reachable when no page made it into the ring (every page failed
  // validation or submission): no CQE will ever finish this batch.
  if (dispatch_now) batch->done(batch->statuses);
#else
  // Unreachable: callers check ring_active() first. Complete the batch
  // with an error rather than dropping the callback.
  std::vector<Status> statuses(
      page_ids.size(), Status::Internal("io_uring backend not compiled in"));
  (void)rbufs;
  (void)wbufs;
  (void)is_read;
  done(statuses);
#endif
}

Status UringDevice::SubmitBatchAndWait(std::span<const PageId> page_ids,
                                       std::span<uint8_t* const> rbufs,
                                       std::span<const uint8_t* const> wbufs,
                                       bool is_read) {
  struct WaitState {
    bool finished = false;
    Status first_error;
  };
  auto ws = std::make_shared<WaitState>();
  SubmitBatch(
      std::vector<PageId>(page_ids.begin(), page_ids.end()),
      std::vector<uint8_t*>(rbufs.begin(), rbufs.end()),
      std::vector<const uint8_t*>(wbufs.begin(), wbufs.end()), is_read,
      [this, ws](std::span<const Status> statuses) {
        Status err;
        for (const Status& s : statuses) {
          if (!s.ok()) {
            err = s;
            break;
          }
        }
        UniqueMutexLock l(mu_);
        ws->first_error = std::move(err);
        ws->finished = true;
        cv_.notify_all();
      });
  UniqueMutexLock l(mu_);
  cv_.wait(l, [&] { return ws->finished; });
  return ws->first_error;
}

Status UringDevice::ReadPages(std::span<const PageId> page_ids,
                              std::span<uint8_t* const> bufs) {
  if (!ring_active() || page_ids.size() < 2) {
    for (size_t i = 0; i < page_ids.size(); ++i) {
      FIELDREP_RETURN_IF_ERROR(SyncReadPage(page_ids[i], bufs[i]));
    }
    return Status::OK();
  }
  return SubmitBatchAndWait(page_ids, bufs, {}, /*is_read=*/true);
}

Status UringDevice::WritePages(std::span<const PageId> page_ids,
                               std::span<const uint8_t* const> bufs) {
  if (!ring_active() || page_ids.size() < 2) {
    for (size_t i = 0; i < page_ids.size(); ++i) {
      FIELDREP_RETURN_IF_ERROR(SyncWritePage(page_ids[i], bufs[i]));
    }
    return Status::OK();
  }
  return SubmitBatchAndWait(page_ids, {}, bufs, /*is_read=*/false);
}

void UringDevice::ReadPagesAsync(std::vector<PageId> page_ids,
                                 std::vector<uint8_t*> bufs, AsyncDone done) {
  if (!ring_active()) {
    StorageDevice::ReadPagesAsync(std::move(page_ids), std::move(bufs),
                                  std::move(done));
    return;
  }
  SubmitBatch(std::move(page_ids), std::move(bufs), {}, /*is_read=*/true,
              std::move(done));
}

void UringDevice::WritePagesAsync(std::vector<PageId> page_ids,
                                  std::vector<const uint8_t*> bufs,
                                  AsyncDone done) {
  if (!ring_active()) {
    StorageDevice::WritePagesAsync(std::move(page_ids), std::move(bufs),
                                   std::move(done));
    return;
  }
  SubmitBatch(std::move(page_ids), {}, std::move(bufs), /*is_read=*/false,
              std::move(done));
}

Status UringDevice::AllocatePage(PageId* page_id) {
  if (!is_open()) return Status::FailedPrecondition("device not open");
  PageBuffer zeros = AllocatePageBuffer();
  std::memset(zeros.get(), 0, kPageSize);
  PageId id = page_count();
  ssize_t n = ::pwrite(fd_, zeros.get(), kPageSize,
                       static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError(StringPrintf("extend to page %u: %s", id,
                                        n < 0 ? std::strerror(errno)
                                              : "short write"));
  }
  page_count_.store(id + 1, std::memory_order_relaxed);
  *page_id = id;
  return Status::OK();
}

Status UringDevice::Sync() {
  if (!is_open()) return Status::FailedPrecondition("device not open");
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(StringPrintf("fdatasync(%s): %s", path_.c_str(),
                                        std::strerror(errno)));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Completion harvesting
// ---------------------------------------------------------------------------

void UringDevice::ReaperLoop() {
#if FIELDREP_URING_RING
  for (;;) {
    int rc = IoUringEnter(ring_->ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
    if (rc < 0 && errno != EINTR && errno != EAGAIN && errno != EBUSY &&
        errno != ETIME) {
      // The wait itself failed (ring torn down under us would be a bug;
      // transient errors retried above). Avoid a hot spin.
      std::this_thread::yield();
    }
    std::vector<std::shared_ptr<BatchState>> ready;
    bool stop;
    {
      UniqueMutexLock l(mu_);
      unsigned head = *ring_->cq_head;
      unsigned tail = __atomic_load_n(ring_->cq_tail, __ATOMIC_ACQUIRE);
      bool freed = false;
      while (head != tail) {
        struct io_uring_cqe* cqe = &ring_->cqes[head & ring_->cq_mask];
        uint64_t user_data = cqe->user_data;
        int res = cqe->res;
        ++head;
        cqes_harvested_.fetch_add(1, std::memory_order_relaxed);
        if (user_data == kNopUserData) continue;
        Pending& p = ring_->pending[user_data];
        Status st;
        if (res != static_cast<int>(kPageSize)) {
          cqe_errors_.fetch_add(1, std::memory_order_relaxed);
          st = Status::IOError(StringPrintf(
              "async %s page %u: %s", p.is_read ? "read" : "write",
              p.page_id,
              res < 0 ? std::strerror(-res) : "short transfer"));
        } else if (p.is_read && p.bounce != nullptr) {
          std::memcpy(p.dest, p.bounce.get(), kPageSize);
        }
        ObserveCqeLatency(NowNs() - p.submit_ns);
        std::shared_ptr<BatchState> batch = std::move(p.batch);
        batch->statuses[p.index] = std::move(st);
        p.bounce.reset();
        ring_->free_slots.push_back(static_cast<uint32_t>(user_data));
        freed = true;
        inflight_.fetch_sub(1, std::memory_order_relaxed);
        if (--batch->remaining == 0) ready.push_back(std::move(batch));
      }
      __atomic_store_n(ring_->cq_head, head, __ATOMIC_RELEASE);
      if (freed) cv_.notify_all();
      stop = stop_ &&
             ring_->free_slots.size() == ring_->pending.size();
    }
    // Dispatch outside mu_: callbacks re-enter the engine (buffer-pool
    // shard and victim locks rank below kDevice).
    for (auto& batch : ready) batch->done(batch->statuses);
    if (stop) return;
  }
#endif
}

// ---------------------------------------------------------------------------
// Stats / telemetry
// ---------------------------------------------------------------------------

void UringDevice::ObserveCqeLatency(uint64_t ns) {
  const std::vector<uint64_t>& bounds = CqeLatencyBounds();
  size_t i = 0;
  while (i < bounds.size() && ns > bounds[i]) ++i;
  if (i > kLatencyBuckets) i = kLatencyBuckets;
  latency_buckets_[i].fetch_add(1, std::memory_order_relaxed);
  latency_sum_.fetch_add(ns, std::memory_order_relaxed);
  latency_count_.fetch_add(1, std::memory_order_relaxed);
}

UringDevice::Stats UringDevice::stats() const {
  Stats s;
  s.sqe_batches = sqe_batches_.load(std::memory_order_relaxed);
  s.sqes_submitted = sqes_submitted_.load(std::memory_order_relaxed);
  s.cqes_harvested = cqes_harvested_.load(std::memory_order_relaxed);
  s.cqe_errors = cqe_errors_.load(std::memory_order_relaxed);
  s.bounce_copies = bounce_copies_.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.inflight_peak = inflight_peak_.load(std::memory_order_relaxed);
  return s;
}

void UringDevice::CollectMetrics(std::vector<MetricSample>* out) const {
  Stats st = stats();
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  add("fieldrep_uring_ring_active",
      "1 when batches flow through an io_uring ring, 0 in fallback mode",
      MetricKind::kGauge, ring_active() ? 1 : 0);
  add("fieldrep_uring_o_direct",
      "1 when the backing file is open with O_DIRECT", MetricKind::kGauge,
      o_direct_ ? 1 : 0);
  add("fieldrep_uring_sqe_batches_total", "io_uring submission syscalls",
      MetricKind::kCounter, static_cast<double>(st.sqe_batches));
  add("fieldrep_uring_sqes_submitted_total",
      "SQEs pushed through the ring", MetricKind::kCounter,
      static_cast<double>(st.sqes_submitted));
  add("fieldrep_uring_cqes_total", "completions harvested",
      MetricKind::kCounter, static_cast<double>(st.cqes_harvested));
  add("fieldrep_uring_cqe_errors_total",
      "completions carrying an error result", MetricKind::kCounter,
      static_cast<double>(st.cqe_errors));
  add("fieldrep_uring_bounce_copies_total",
      "unaligned transfers bounced through an aligned buffer",
      MetricKind::kCounter, static_cast<double>(st.bounce_copies));
  add("fieldrep_uring_inflight", "pages currently in flight",
      MetricKind::kGauge, static_cast<double>(st.inflight));
  add("fieldrep_uring_inflight_peak", "high-water mark of inflight pages",
      MetricKind::kGauge, static_cast<double>(st.inflight_peak));

  const std::vector<uint64_t>& bounds = CqeLatencyBounds();
  Histogram::Snapshot snap;
  snap.bounds = bounds;
  snap.buckets.resize(bounds.size() + 1);
  for (size_t i = 0; i < snap.buckets.size() && i <= kLatencyBuckets; ++i) {
    snap.buckets[i] = latency_buckets_[i].load(std::memory_order_relaxed);
  }
  snap.sum = latency_sum_.load(std::memory_order_relaxed);
  snap.count = latency_count_.load(std::memory_order_relaxed);
  MetricSample h;
  h.name = "fieldrep_uring_cqe_latency_ns";
  h.help = "CQE latency (submit to harvest)";
  h.kind = MetricKind::kHistogram;
  h.histogram = std::move(snap);
  out->push_back(std::move(h));
}

}  // namespace fieldrep
