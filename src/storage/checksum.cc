#include "storage/checksum.h"

#include <cstring>

#include "common/bytes.h"
#include "storage/slotted_page.h"

namespace fieldrep {

namespace {
uint32_t StoredChecksum(const uint8_t* page) {
  return DecodeU32(page + kPageChecksumOffset);
}
}  // namespace

bool PageIsChecksummed(const uint8_t* page) {
  uint16_t type = DecodeU16(page);
  return type >= static_cast<uint16_t>(PageType::kHeap) &&
         type <= static_cast<uint16_t>(PageType::kMeta);
}

uint32_t ComputePageChecksum(const uint8_t* page) {
  // The checksum field itself is excluded so the stored value does not
  // feed its own computation: CRC the header bytes before the field and
  // the rest of the page after it, then mix the two.
  constexpr uint32_t kTailOffset = kPageChecksumOffset + 4;
  uint32_t head_crc = Crc32(page, kPageChecksumOffset);
  uint32_t tail_crc = Crc32(page + kTailOffset, kPageSize - kTailOffset);
  uint32_t combined = head_crc ^ (tail_crc * 0x9E3779B9u + 0x7F4A7C15u);
  return combined == 0 ? 1 : combined;
}

void StampPageChecksum(uint8_t* page) {
  if (!PageIsChecksummed(page)) return;
  uint32_t crc = ComputePageChecksum(page);
  std::memcpy(page + kPageChecksumOffset, &crc, sizeof(crc));
}

bool VerifyPageChecksum(const uint8_t* page) {
  if (!PageIsChecksummed(page)) return true;
  uint32_t stored = StoredChecksum(page);
  if (stored == 0) return true;
  return stored == ComputePageChecksum(page);
}

}  // namespace fieldrep
