#ifndef FIELDREP_STORAGE_URING_DEVICE_H_
#define FIELDREP_STORAGE_URING_DEVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "storage/storage_device.h"

namespace fieldrep {

struct MetricSample;

/// \brief Asynchronous file-backed storage device on io_uring.
///
/// Batch operations (ReadPages/WritePages and the *Async entry points)
/// are submitted as SQE batches to an io_uring ring — one submission
/// syscall moves up to ring_depth pages — and completions are harvested
/// by a reaper thread that invokes the per-batch callback. Single-page
/// operations stay on plain pread/pwrite (a 4 KiB cache read costs less
/// than a ring round trip). With `use_o_direct` the backing file bypasses
/// the OS page cache; transfers whose buffers are not page-aligned are
/// bounced through an internal aligned buffer (the buffer pool's frames
/// are always aligned, so the hot paths never bounce).
///
/// Fallback matrix (DESIGN.md §15) — the device always *works*:
///   - compile time: built without FIELDREP_HAVE_IO_URING (CMake option
///     FIELDREP_WITH_URING=OFF or no <linux/io_uring.h>), every operation
///     runs on the synchronous pread/pwrite path;
///   - runtime: io_uring_setup fails (old kernel, seccomp), same
///     synchronous path, reported by ring_active() == false;
///   - O_DIRECT: the filesystem refuses the flag, the file is reopened
///     buffered and o_direct() reports false.
/// In fallback mode async_io() is false, so the default synchronous
/// *Async implementations run and the buffer pool's accounting and error
/// propagation are exactly FileDevice's.
class UringDevice : public StorageDevice {
 public:
  struct Options {
    /// Open the backing file with O_DIRECT (aligned transfers bypass the
    /// OS page cache). Falls back to buffered I/O if the filesystem
    /// refuses the flag.
    bool use_o_direct = false;
    /// Submission queue depth (pages in flight); the kernel rounds up to
    /// a power of two. Also bounds the completion backlog — the pending
    /// table is sized to it, so the CQ ring can never overflow.
    unsigned ring_depth = 256;
    /// Skip the ring even when the kernel supports it (tests exercise
    /// the fallback path deterministically with this).
    bool force_fallback = false;
  };

  /// Always-on relaxed-atomic submission statistics.
  struct Stats {
    uint64_t sqe_batches = 0;     ///< Submission syscalls issued.
    uint64_t sqes_submitted = 0;  ///< SQEs pushed through the ring.
    uint64_t cqes_harvested = 0;  ///< Completions reaped.
    uint64_t cqe_errors = 0;      ///< Completions carrying an error.
    uint64_t bounce_copies = 0;   ///< Unaligned transfers bounced.
    uint64_t inflight = 0;        ///< Pages currently in flight.
    uint64_t inflight_peak = 0;   ///< High-water mark of inflight.
  };

  UringDevice();  // defined out of line: members need the complete Ring type
  ~UringDevice() override;

  UringDevice(const UringDevice&) = delete;
  UringDevice& operator=(const UringDevice&) = delete;

  /// True when this kernel accepts io_uring_setup (and the backend was
  /// compiled in). Cheap probe; the result cannot change while running.
  static bool KernelSupportsIoUring();

  /// Opens (creating if necessary) the backing file and, if supported,
  /// the ring. A failed ring setup is not an error — the device opens in
  /// fallback mode (see the class comment).
  Status Open(const std::string& path, const Options& options);
  Status Open(const std::string& path) { return Open(path, Options()); }

  /// Waits for in-flight completions, tears the ring down, and closes
  /// the backing file. Safe to call twice.
  Status Close();

  bool is_open() const { return fd_ >= 0; }
  /// True when batches actually flow through an io_uring ring.
  bool ring_active() const { return ring_ != nullptr; }
  /// True when the backing file is open with O_DIRECT.
  bool o_direct() const { return o_direct_; }

  bool async_io() const override { return ring_active(); }

  Status ReadPage(PageId page_id, void* buf) override;
  Status WritePage(PageId page_id, const void* buf) override;
  /// SQE batch + blocking harvest when the ring is active; per-page
  /// fallback otherwise.
  Status ReadPages(std::span<const PageId> page_ids,
                   std::span<uint8_t* const> bufs) override;
  Status WritePages(std::span<const PageId> page_ids,
                    std::span<const uint8_t* const> bufs) override;
  /// True asynchronous submission when the ring is active: returns after
  /// the SQEs are in the ring, and `done` runs on the reaper thread.
  void ReadPagesAsync(std::vector<PageId> page_ids,
                      std::vector<uint8_t*> bufs, AsyncDone done) override;
  void WritePagesAsync(std::vector<PageId> page_ids,
                       std::vector<const uint8_t*> bufs,
                       AsyncDone done) override;
  Status AllocatePage(PageId* page_id) override;
  /// fdatasync on the backing file. FlushFramesOrdered harvests every
  /// write completion before the checkpoint issues this, so the sync
  /// covers all previously completed batches.
  Status Sync() override;
  uint32_t page_count() const override {
    return page_count_.load(std::memory_order_relaxed);
  }

  Stats stats() const;

  /// Appends this device's metric samples (submission counters, inflight
  /// gauges, CQE latency histogram, mode gauges) to `out` — registered
  /// as a MetricsRegistry collector by Database when it owns the device.
  void CollectMetrics(std::vector<MetricSample>* out) const;

 private:
  struct Ring;        // io_uring state; absent in fallback mode
  struct BatchState;  // one async batch's completion bookkeeping

  /// Per-page completion bookkeeping, keyed by SQE user_data.
  struct Pending;

  /// Synchronous single-page transfer with O_DIRECT bounce handling.
  Status SyncReadPage(PageId page_id, void* buf);
  Status SyncWritePage(PageId page_id, const void* buf);

  /// Submits one async batch into the ring (blocking while the pending
  /// table is full) and returns immediately; completion bookkeeping runs
  /// on the reaper thread. Pages failing the bounds check complete
  /// immediately with OutOfRange.
  void SubmitBatch(std::vector<PageId> page_ids, std::vector<uint8_t*> rbufs,
                   std::vector<const uint8_t*> wbufs, bool is_read,
                   AsyncDone done);

  /// SubmitBatch + wait for the batch's completion; returns the first
  /// per-page error (ReadPages/WritePages over the ring).
  Status SubmitBatchAndWait(std::span<const PageId> page_ids,
                            std::span<uint8_t* const> rbufs,
                            std::span<const uint8_t* const> wbufs,
                            bool is_read);

  /// Best-effort ring construction: mmaps the SQ/CQ rings and starts the
  /// reaper. Leaves ring_ null (fallback mode) on any failure.
  void SetupRing(unsigned ring_depth);

  /// Reaper thread: harvests CQEs, finishes batches, dispatches `done`
  /// callbacks (with no device lock held).
  void ReaperLoop();

  /// Tears down the ring (joins the reaper); fd stays open.
  void TeardownRing();

  void ObserveCqeLatency(uint64_t ns);

  int fd_ = -1;
  std::string path_;
  bool o_direct_ = false;
  /// Atomic for the same reason as FileDevice: readers bounds-check
  /// concurrently with the (single) allocating writer.
  std::atomic<uint32_t> page_count_{0};

  std::unique_ptr<Ring> ring_;
  std::thread reaper_;

  /// Guards the submission queue tail, the pending/free-slot tables, and
  /// the stop flag. The reaper harvests under it but always releases it
  /// before invoking completion callbacks (which re-enter the buffer
  /// pool at lower lock ranks).
  mutable Mutex mu_{LockRank::kDevice, "uring.mu"};
  CondVar cv_;  ///< Free pending slots / sync-batch completion.
  bool stop_ = false;

  // Stats (relaxed atomics, the IoStats discipline).
  std::atomic<uint64_t> sqe_batches_{0};
  std::atomic<uint64_t> sqes_submitted_{0};
  std::atomic<uint64_t> cqes_harvested_{0};
  std::atomic<uint64_t> cqe_errors_{0};
  std::atomic<uint64_t> bounce_copies_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> inflight_peak_{0};

  /// CQE latency histogram (submit -> harvest, ns). Fixed bucket ladder
  /// shared with the telemetry Histogram exposition.
  static constexpr size_t kLatencyBuckets = 16;
  std::atomic<uint64_t> latency_buckets_[kLatencyBuckets + 1] = {};
  std::atomic<uint64_t> latency_sum_{0};
  std::atomic<uint64_t> latency_count_{0};
};

}  // namespace fieldrep

#endif  // FIELDREP_STORAGE_URING_DEVICE_H_
