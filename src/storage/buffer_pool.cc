#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

#include "common/strings.h"

namespace fieldrep {

PageGuard::PageGuard(BufferPool* pool, size_t frame_index)
    : pool_(pool), frame_index_(frame_index) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    other.pool_ = nullptr;
  }
  return *this;
}

uint8_t* PageGuard::data() {
  assert(valid());
  return pool_->frames_[frame_index_].data.get();
}

const uint8_t* PageGuard::data() const {
  assert(valid());
  return pool_->frames_[frame_index_].data.get();
}

PageId PageGuard::page_id() const {
  assert(valid());
  return pool_->frames_[frame_index_].page_id;
}

void PageGuard::MarkDirty() {
  assert(valid());
  pool_->frames_[frame_index_].dirty = true;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(StorageDevice* device, size_t capacity)
    : device_(device) {
  assert(capacity >= 1);
  frames_.resize(capacity);
  for (auto& frame : frames_) {
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
  }
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity)
    : BufferPool(device.get(), capacity) {
  owned_device_ = std::move(device);
}

BufferPool::~BufferPool() {
  // Best-effort writeback; errors are unreportable from a destructor.
  FlushAll().ok();
}

Status BufferPool::FetchPage(PageId page_id, PageGuard* guard) {
  ++stats_.fetches;
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.referenced = true;
    *guard = PageGuard(this, it->second);
    return Status::OK();
  }

  size_t frame_index;
  FIELDREP_RETURN_IF_ERROR(GetVictimFrame(&frame_index));
  Frame& frame = frames_[frame_index];
  Status s = device_->ReadPage(page_id, frame.data.get());
  if (!s.ok()) {
    free_frames_.push_back(frame_index);
    return s;
  }
  ++stats_.disk_reads;
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.dirty = false;
  frame.referenced = true;
  frame.in_use = true;
  page_table_[page_id] = frame_index;
  *guard = PageGuard(this, frame_index);
  return Status::OK();
}

Status BufferPool::NewPage(PageGuard* guard) {
  PageId page_id;
  FIELDREP_RETURN_IF_ERROR(device_->AllocatePage(&page_id));
  size_t frame_index;
  FIELDREP_RETURN_IF_ERROR(GetVictimFrame(&frame_index));
  Frame& frame = frames_[frame_index];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = page_id;
  frame.pin_count = 1;
  // A fresh page is dirty by definition: its contents exist only here.
  frame.dirty = true;
  frame.referenced = true;
  frame.in_use = true;
  page_table_[page_id] = frame_index;
  *guard = PageGuard(this, frame_index);
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      FIELDREP_RETURN_IF_ERROR(
          device_->WritePage(frame.page_id, frame.data.get()));
      ++stats_.disk_writes;
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.pin_count > 0) {
      return Status::FailedPrecondition(
          StringPrintf("page %u still pinned", frame.page_id));
    }
  }
  FIELDREP_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.in_use) {
      page_table_.erase(frame.page_id);
      frame.in_use = false;
      frame.page_id = kInvalidPageId;
      frame.referenced = false;
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

uint64_t BufferPool::total_pins() const {
  uint64_t total = 0;
  for (const Frame& frame : frames_) total += frame.pin_count;
  return total;
}

Status BufferPool::GetVictimFrame(size_t* frame_index) {
  if (!free_frames_.empty()) {
    *frame_index = free_frames_.back();
    free_frames_.pop_back();
    return Status::OK();
  }
  // Clock sweep: a frame survives one pass if its reference bit is set.
  // Two full passes guarantee we either find an unpinned victim or prove
  // every frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& frame = frames_[clock_hand_];
    size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.pin_count > 0) continue;
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      FIELDREP_RETURN_IF_ERROR(
          device_->WritePage(frame.page_id, frame.data.get()));
      ++stats_.disk_writes;
      frame.dirty = false;
    }
    page_table_.erase(frame.page_id);
    frame.in_use = false;
    frame.page_id = kInvalidPageId;
    *frame_index = index;
    return Status::OK();
  }
  return Status::FailedPrecondition("all buffer frames are pinned");
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count > 0);
  --frame.pin_count;
}

}  // namespace fieldrep
