#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "storage/checksum.h"

namespace fieldrep {

namespace {
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

PageGuard::PageGuard(BufferPool* pool, size_t frame_index)
    : pool_(pool), frame_index_(frame_index) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    other.pool_ = nullptr;
  }
  return *this;
}

uint8_t* PageGuard::data() {
  assert(valid());
  return pool_->frames_[frame_index_].data.get();
}

const uint8_t* PageGuard::data() const {
  assert(valid());
  return pool_->frames_[frame_index_].data.get();
}

PageId PageGuard::page_id() const {
  assert(valid());
  return pool_->frames_[frame_index_].page_id;
}

void PageGuard::MarkDirty() {
  assert(valid());
  BufferPool::Frame& frame = pool_->frames_[frame_index_];
  frame.dirty = true;
  if (pool_->observer_ != nullptr) {
    pool_->observer_->OnPageDirtied(frame.page_id);
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(StorageDevice* device, size_t capacity)
    : device_(device) {
  assert(capacity >= 1);
  frames_.resize(capacity);
  for (auto& frame : frames_) {
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
  }
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity)
    : BufferPool(device.get(), capacity) {
  owned_device_ = std::move(device);
}

BufferPool::~BufferPool() {
  // Best-effort writeback. A destructor cannot propagate the status, but
  // silently discarding dirty data would hide real corruption — report it.
  Status s = FlushAll();
  if (!s.ok()) {
    std::fprintf(stderr,
                 "fieldrep: BufferPool writeback failed at shutdown, dirty "
                 "pages lost: %s\n",
                 s.ToString().c_str());
  }
}

Status BufferPool::FetchPage(PageId page_id, PageGuard* guard) {
  ++stats_.fetches;
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& frame = frames_[it->second];
    if (frame.prefetched) {
      // First logical access of a prefetched page: charge the read the
      // caller would have performed without read-ahead, so the logical
      // counters are independent of the read-ahead window.
      frame.prefetched = false;
      ++stats_.disk_reads;
    } else {
      ++stats_.hits;
    }
    ++frame.pin_count;
    frame.referenced = true;
    if (observer_ != nullptr) {
      observer_->OnPageAccess(page_id, frame.data.get());
    }
    *guard = PageGuard(this, it->second);
    return Status::OK();
  }

  size_t frame_index;
  FIELDREP_RETURN_IF_ERROR(GetVictimFrame(&frame_index));
  Frame& frame = frames_[frame_index];
  uint64_t start_ns = NowNs();
  Status s = device_->ReadPage(page_id, frame.data.get());
  stats_.read_ns += NowNs() - start_ns;
  if (!s.ok()) {
    free_frames_.push_back(frame_index);
    return s;
  }
  ++stats_.disk_reads;
  stats_.bytes_read += kPageSize;
  // Page 0 is the magic-prefixed database header, not a headered page.
  if (verify_checksums_ && page_id != 0 &&
      !VerifyPageChecksum(frame.data.get())) {
    free_frames_.push_back(frame_index);
    return Status::Corruption(
        StringPrintf("page %u failed checksum verification", page_id));
  }
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.page_lsn = 0;
  frame.dirty = false;
  frame.referenced = true;
  frame.in_use = true;
  frame.prefetched = false;
  page_table_[page_id] = frame_index;
  if (observer_ != nullptr) {
    observer_->OnPageAccess(page_id, frame.data.get());
  }
  *guard = PageGuard(this, frame_index);
  return Status::OK();
}

Status BufferPool::NewPage(PageGuard* guard) {
  PageId page_id;
  FIELDREP_RETURN_IF_ERROR(device_->AllocatePage(&page_id));
  size_t frame_index;
  FIELDREP_RETURN_IF_ERROR(GetVictimFrame(&frame_index));
  Frame& frame = frames_[frame_index];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.page_lsn = 0;
  // A fresh page is dirty by definition: its contents exist only here.
  frame.dirty = true;
  frame.referenced = true;
  frame.in_use = true;
  frame.prefetched = false;
  page_table_[page_id] = frame_index;
  if (observer_ != nullptr) {
    observer_->OnPageAccess(page_id, frame.data.get());
    observer_->OnPageDirtied(page_id);
  }
  *guard = PageGuard(this, frame_index);
  return Status::OK();
}

Status BufferPool::Prefetch(std::span<const PageId> page_ids) {
  if (read_ahead_window_ == 0 || page_ids.empty()) return Status::OK();

  // Distinct, in-range, non-resident ids in ascending order (the device
  // coalesces contiguous runs, so sorted order maximises run length).
  std::vector<PageId> misses(page_ids.begin(), page_ids.end());
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  const PageId device_pages = device_->page_count();
  std::erase_if(misses, [&](PageId id) {
    return id >= device_pages || page_table_.count(id) != 0;
  });
  if (misses.empty()) return Status::OK();

  // Acquire a victim frame per miss. The temporary pin keeps a later
  // victim sweep in this same batch from handing out the frame twice.
  std::vector<size_t> frame_indices;
  std::vector<uint8_t*> bufs;
  frame_indices.reserve(misses.size());
  bufs.reserve(misses.size());
  auto release_frames = [&] {
    for (size_t index : frame_indices) {
      frames_[index].pin_count = 0;
      free_frames_.push_back(index);
    }
  };
  size_t acquired = 0;
  for (; acquired < misses.size(); ++acquired) {
    size_t frame_index;
    Status s = GetVictimFrame(&frame_index);
    if (s.IsFailedPrecondition()) break;  // all pinned: shrink the batch
    if (!s.ok()) {
      release_frames();
      return s;  // dirty-victim writeback failed: real error
    }
    frames_[frame_index].pin_count = 1;
    frame_indices.push_back(frame_index);
    bufs.push_back(frames_[frame_index].data.get());
  }
  misses.resize(acquired);
  if (misses.empty()) return Status::OK();

  uint64_t start_ns = NowNs();
  Status s = device_->ReadPages(misses, bufs);
  stats_.read_ns += NowNs() - start_ns;
  if (!s.ok()) {
    release_frames();
    return s;
  }
  stats_.batched_reads += misses.size();
  stats_.bytes_read += misses.size() * kPageSize;

  for (size_t i = 0; i < misses.size(); ++i) {
    Frame& frame = frames_[frame_indices[i]];
    // A page failing verification is simply not installed, so the next
    // on-demand fetch sees exactly what it would have seen without
    // read-ahead (and reports the corruption itself).
    if (verify_checksums_ && misses[i] != 0 &&
        !VerifyPageChecksum(frame.data.get())) {
      frame.pin_count = 0;
      free_frames_.push_back(frame_indices[i]);
      continue;
    }
    frame.page_id = misses[i];
    frame.pin_count = 0;
    frame.page_lsn = 0;
    frame.dirty = false;
    frame.referenced = true;
    frame.in_use = true;
    frame.prefetched = true;
    page_table_[misses[i]] = frame_indices[i];
  }
  return Status::OK();
}

Status BufferPool::PrefetchOidPages(std::span<const Oid> oids) {
  if (read_ahead_window_ == 0 || oids.empty()) return Status::OK();
  std::vector<PageId> pages;
  pages.reserve(oids.size());
  for (const Oid& oid : oids) {
    if (oid.valid()) pages.push_back(oid.page_id);
  }
  return Prefetch(pages);
}

Status BufferPool::WriteBackFrame(Frame& frame) {
  if (observer_ != nullptr) {
    FIELDREP_RETURN_IF_ERROR(
        observer_->BeforePageFlush(frame.page_id, frame.page_lsn));
  }
  // Page 0 is the magic-prefixed database header, not a headered page.
  if (frame.page_id != 0) StampPageChecksum(frame.data.get());
  uint64_t start_ns = NowNs();
  Status s = device_->WritePage(frame.page_id, frame.data.get());
  stats_.write_ns += NowNs() - start_ns;
  FIELDREP_RETURN_IF_ERROR(s);
  ++stats_.disk_writes;
  stats_.bytes_written += kPageSize;
  frame.dirty = false;
  return Status::OK();
}

Status BufferPool::FlushFramesOrdered(std::vector<size_t> frame_indices) {
  std::sort(frame_indices.begin(), frame_indices.end(),
            [&](size_t a, size_t b) {
              return frames_[a].page_id < frames_[b].page_id;
            });
  size_t i = 0;
  while (i < frame_indices.size()) {
    // Maximal contiguous PageId run starting at i.
    size_t run = 1;
    while (i + run < frame_indices.size() &&
           frames_[frame_indices[i + run]].page_id ==
               frames_[frame_indices[i]].page_id + run) {
      ++run;
    }
    std::vector<PageId> ids(run);
    std::vector<const uint8_t*> bufs(run);
    for (size_t j = 0; j < run; ++j) {
      Frame& frame = frames_[frame_indices[i + j]];
      if (observer_ != nullptr) {
        Status s = observer_->BeforePageFlush(frame.page_id, frame.page_lsn);
        if (!s.ok()) {
          return Status(s.code(), StringPrintf("flushing page %u: %s",
                                               frame.page_id,
                                               s.message().c_str()));
        }
      }
      if (frame.page_id != 0) StampPageChecksum(frame.data.get());
      ids[j] = frame.page_id;
      bufs[j] = frame.data.get();
    }
    uint64_t start_ns = NowNs();
    Status s = device_->WritePages(ids, bufs);
    stats_.write_ns += NowNs() - start_ns;
    if (!s.ok()) {
      // A prefix of the run may have reached the device; the frames stay
      // dirty, so a later flush rewrites them — always safe.
      return Status(s.code(),
                    StringPrintf("flushing pages %u..%u: %s", ids.front(),
                                 ids.back(), s.message().c_str()));
    }
    for (size_t j = 0; j < run; ++j) frames_[frame_indices[i + j]].dirty = false;
    stats_.disk_writes += run;
    stats_.bytes_written += run * kPageSize;
    if (run > 1) stats_.coalesced_writes += run;
    i += run;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  std::vector<size_t> dirty;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& frame = frames_[i];
    if (!frame.in_use || !frame.dirty) continue;
    if (observer_ != nullptr && !observer_->CanEvict(frame.page_id)) {
      // Uncommitted transaction page: commit will release it; a crash
      // before then must leave the device without it (atomicity).
      continue;
    }
    dirty.push_back(i);
  }
  return FlushFramesOrdered(std::move(dirty));
}

Status BufferPool::EvictAll() {
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.pin_count > 0) {
      return Status::FailedPrecondition(
          StringPrintf("page %u still pinned", frame.page_id));
    }
    if (frame.in_use && frame.dirty && observer_ != nullptr &&
        !observer_->CanEvict(frame.page_id)) {
      return Status::FailedPrecondition(StringPrintf(
          "page %u holds uncommitted transaction writes", frame.page_id));
    }
  }
  FIELDREP_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.in_use) {
      page_table_.erase(frame.page_id);
      frame.in_use = false;
      frame.page_id = kInvalidPageId;
      frame.referenced = false;
      frame.prefetched = false;
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

const uint8_t* BufferPool::PeekPage(PageId page_id) const {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return nullptr;
  return frames_[it->second].data.get();
}

void BufferPool::SetPageLsn(PageId page_id, uint64_t lsn) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  frames_[it->second].page_lsn = lsn;
}

std::vector<PageId> BufferPool::DirtyPageIds() const {
  std::vector<PageId> ids;
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) ids.push_back(frame.page_id);
  }
  return ids;
}

Status BufferPool::SyncDevice() {
  uint64_t start_ns = NowNs();
  Status s = device_->Sync();
  stats_.sync_ns += NowNs() - start_ns;
  FIELDREP_RETURN_IF_ERROR(s);
  ++stats_.disk_syncs;
  return Status::OK();
}

uint64_t BufferPool::total_pins() const {
  uint64_t total = 0;
  for (const Frame& frame : frames_) total += frame.pin_count;
  return total;
}

Status BufferPool::GetVictimFrame(size_t* frame_index) {
  if (!free_frames_.empty()) {
    *frame_index = free_frames_.back();
    free_frames_.pop_back();
    return Status::OK();
  }
  // Clock sweep: a frame survives one pass if its reference bit is set.
  // Two full passes guarantee we either find an unpinned victim or prove
  // every frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& frame = frames_[clock_hand_];
    size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.pin_count > 0) continue;
    if (frame.dirty && observer_ != nullptr &&
        !observer_->CanEvict(frame.page_id)) {
      continue;  // no-steal: uncommitted pages stay resident
    }
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      FIELDREP_RETURN_IF_ERROR(WriteBackFrame(frame));
    }
    page_table_.erase(frame.page_id);
    frame.in_use = false;
    frame.page_id = kInvalidPageId;
    frame.prefetched = false;
    *frame_index = index;
    return Status::OK();
  }
  return Status::FailedPrecondition("all buffer frames are pinned");
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count > 0);
  --frame.pin_count;
}

}  // namespace fieldrep
