#include "storage/buffer_pool.h"

#include <cassert>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "storage/checksum.h"

namespace fieldrep {

PageGuard::PageGuard(BufferPool* pool, size_t frame_index)
    : pool_(pool), frame_index_(frame_index) {}

PageGuard::~PageGuard() { Release(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_) {
  other.pool_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    other.pool_ = nullptr;
  }
  return *this;
}

uint8_t* PageGuard::data() {
  assert(valid());
  return pool_->frames_[frame_index_].data.get();
}

const uint8_t* PageGuard::data() const {
  assert(valid());
  return pool_->frames_[frame_index_].data.get();
}

PageId PageGuard::page_id() const {
  assert(valid());
  return pool_->frames_[frame_index_].page_id;
}

void PageGuard::MarkDirty() {
  assert(valid());
  BufferPool::Frame& frame = pool_->frames_[frame_index_];
  frame.dirty = true;
  if (pool_->observer_ != nullptr) {
    pool_->observer_->OnPageDirtied(frame.page_id);
  }
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
  }
}

BufferPool::BufferPool(StorageDevice* device, size_t capacity)
    : device_(device) {
  assert(capacity >= 1);
  frames_.resize(capacity);
  for (auto& frame : frames_) {
    frame.data = std::make_unique<uint8_t[]>(kPageSize);
  }
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity)
    : BufferPool(device.get(), capacity) {
  owned_device_ = std::move(device);
}

BufferPool::~BufferPool() {
  // Best-effort writeback. A destructor cannot propagate the status, but
  // silently discarding dirty data would hide real corruption — report it.
  Status s = FlushAll();
  if (!s.ok()) {
    std::fprintf(stderr,
                 "fieldrep: BufferPool writeback failed at shutdown, dirty "
                 "pages lost: %s\n",
                 s.ToString().c_str());
  }
}

Status BufferPool::FetchPage(PageId page_id, PageGuard* guard) {
  ++stats_.fetches;
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& frame = frames_[it->second];
    ++frame.pin_count;
    frame.referenced = true;
    if (observer_ != nullptr) {
      observer_->OnPageAccess(page_id, frame.data.get());
    }
    *guard = PageGuard(this, it->second);
    return Status::OK();
  }

  size_t frame_index;
  FIELDREP_RETURN_IF_ERROR(GetVictimFrame(&frame_index));
  Frame& frame = frames_[frame_index];
  Status s = device_->ReadPage(page_id, frame.data.get());
  if (!s.ok()) {
    free_frames_.push_back(frame_index);
    return s;
  }
  ++stats_.disk_reads;
#ifndef NDEBUG
  // Page 0 is the magic-prefixed database header, not a headered page.
  if (page_id != 0 && !VerifyPageChecksum(frame.data.get())) {
    free_frames_.push_back(frame_index);
    return Status::Corruption(
        StringPrintf("page %u failed checksum verification", page_id));
  }
#endif
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.page_lsn = 0;
  frame.dirty = false;
  frame.referenced = true;
  frame.in_use = true;
  page_table_[page_id] = frame_index;
  if (observer_ != nullptr) {
    observer_->OnPageAccess(page_id, frame.data.get());
  }
  *guard = PageGuard(this, frame_index);
  return Status::OK();
}

Status BufferPool::NewPage(PageGuard* guard) {
  PageId page_id;
  FIELDREP_RETURN_IF_ERROR(device_->AllocatePage(&page_id));
  size_t frame_index;
  FIELDREP_RETURN_IF_ERROR(GetVictimFrame(&frame_index));
  Frame& frame = frames_[frame_index];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id = page_id;
  frame.pin_count = 1;
  frame.page_lsn = 0;
  // A fresh page is dirty by definition: its contents exist only here.
  frame.dirty = true;
  frame.referenced = true;
  frame.in_use = true;
  page_table_[page_id] = frame_index;
  if (observer_ != nullptr) {
    observer_->OnPageAccess(page_id, frame.data.get());
    observer_->OnPageDirtied(page_id);
  }
  *guard = PageGuard(this, frame_index);
  return Status::OK();
}

Status BufferPool::WriteBackFrame(Frame& frame) {
  if (observer_ != nullptr) {
    FIELDREP_RETURN_IF_ERROR(
        observer_->BeforePageFlush(frame.page_id, frame.page_lsn));
  }
  // Page 0 is the magic-prefixed database header, not a headered page.
  if (frame.page_id != 0) StampPageChecksum(frame.data.get());
  FIELDREP_RETURN_IF_ERROR(
      device_->WritePage(frame.page_id, frame.data.get()));
  ++stats_.disk_writes;
  frame.dirty = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) {
      if (observer_ != nullptr && !observer_->CanEvict(frame.page_id)) {
        // Uncommitted transaction page: commit will release it; a crash
        // before then must leave the device without it (atomicity).
        continue;
      }
      FIELDREP_RETURN_IF_ERROR(WriteBackFrame(frame));
    }
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.pin_count > 0) {
      return Status::FailedPrecondition(
          StringPrintf("page %u still pinned", frame.page_id));
    }
    if (frame.in_use && frame.dirty && observer_ != nullptr &&
        !observer_->CanEvict(frame.page_id)) {
      return Status::FailedPrecondition(StringPrintf(
          "page %u holds uncommitted transaction writes", frame.page_id));
    }
  }
  FIELDREP_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& frame = frames_[i];
    if (frame.in_use) {
      page_table_.erase(frame.page_id);
      frame.in_use = false;
      frame.page_id = kInvalidPageId;
      frame.referenced = false;
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

const uint8_t* BufferPool::PeekPage(PageId page_id) const {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return nullptr;
  return frames_[it->second].data.get();
}

void BufferPool::SetPageLsn(PageId page_id, uint64_t lsn) {
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return;
  frames_[it->second].page_lsn = lsn;
}

std::vector<PageId> BufferPool::DirtyPageIds() const {
  std::vector<PageId> ids;
  for (const Frame& frame : frames_) {
    if (frame.in_use && frame.dirty) ids.push_back(frame.page_id);
  }
  return ids;
}

Status BufferPool::SyncDevice() {
  FIELDREP_RETURN_IF_ERROR(device_->Sync());
  ++stats_.disk_syncs;
  return Status::OK();
}

uint64_t BufferPool::total_pins() const {
  uint64_t total = 0;
  for (const Frame& frame : frames_) total += frame.pin_count;
  return total;
}

Status BufferPool::GetVictimFrame(size_t* frame_index) {
  if (!free_frames_.empty()) {
    *frame_index = free_frames_.back();
    free_frames_.pop_back();
    return Status::OK();
  }
  // Clock sweep: a frame survives one pass if its reference bit is set.
  // Two full passes guarantee we either find an unpinned victim or prove
  // every frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& frame = frames_[clock_hand_];
    size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.pin_count > 0) continue;
    if (frame.dirty && observer_ != nullptr &&
        !observer_->CanEvict(frame.page_id)) {
      continue;  // no-steal: uncommitted pages stay resident
    }
    if (frame.referenced) {
      frame.referenced = false;
      continue;
    }
    if (frame.dirty) {
      FIELDREP_RETURN_IF_ERROR(WriteBackFrame(frame));
    }
    page_table_.erase(frame.page_id);
    frame.in_use = false;
    frame.page_id = kInvalidPageId;
    *frame_index = index;
    return Status::OK();
  }
  return Status::FailedPrecondition("all buffer frames are pinned");
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& frame = frames_[frame_index];
  assert(frame.pin_count > 0);
  --frame.pin_count;
}

}  // namespace fieldrep
