#include "storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/strings.h"
#include "storage/checksum.h"
#include "telemetry/metrics.h"

namespace fieldrep {

namespace {
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

PageGuard::PageGuard(BufferPool* pool, size_t frame_index, LatchMode mode)
    : pool_(pool), frame_index_(frame_index), mode_(mode) {
#ifndef NDEBUG
  debug_state_ = DebugState::kActive;
#endif
}

PageGuard::~PageGuard() { ReleaseInternal(); }

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_), frame_index_(other.frame_index_), mode_(other.mode_) {
#ifndef NDEBUG
  debug_state_ = other.debug_state_;
  other.debug_state_ = DebugState::kMoved;
#endif
  other.pool_ = nullptr;
  other.frame_index_ = 0;
  other.mode_ = LatchMode::kExclusive;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    ReleaseInternal();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    mode_ = other.mode_;
#ifndef NDEBUG
    debug_state_ = other.debug_state_;
    other.debug_state_ = DebugState::kMoved;
#endif
    other.pool_ = nullptr;
    other.frame_index_ = 0;
    other.mode_ = LatchMode::kExclusive;
  }
  return *this;
}

uint8_t* PageGuard::data() {
  assert(valid());
#ifndef NDEBUG
  assert(debug_state_ == DebugState::kActive);
#endif
  return pool_->frames_[frame_index_].data.get();
}

const uint8_t* PageGuard::data() const {
  assert(valid());
#ifndef NDEBUG
  assert(debug_state_ == DebugState::kActive);
#endif
  return pool_->frames_[frame_index_].data.get();
}

PageId PageGuard::page_id() const {
  assert(valid());
#ifndef NDEBUG
  assert(debug_state_ == DebugState::kActive);
#endif
  return pool_->frames_[frame_index_].page_id.load(kRelaxed);
}

void PageGuard::MarkDirty() {
  assert(valid());
#ifndef NDEBUG
  assert(debug_state_ == DebugState::kActive);
#endif
  // Readers never dirty pages: the single-writer model (and the WAL's
  // pre-image capture, which only exclusive fetches trigger) depends on it.
  assert(mode_ == LatchMode::kExclusive);
  BufferPool::Frame& frame = pool_->frames_[frame_index_];
  frame.dirty.store(true, kRelaxed);
  if (pool_->observer_ != nullptr) {
    pool_->observer_->OnPageDirtied(frame.page_id.load(kRelaxed));
  }
}

void PageGuard::Release() {
#ifndef NDEBUG
  assert(debug_state_ != DebugState::kReleased && "PageGuard double release");
  assert(debug_state_ != DebugState::kMoved &&
         "PageGuard released after being moved from");
#endif
  ReleaseInternal();
}

void PageGuard::ReleaseInternal() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_, mode_);
    pool_ = nullptr;
    frame_index_ = 0;
  }
#ifndef NDEBUG
  if (debug_state_ == DebugState::kActive) {
    debug_state_ = DebugState::kReleased;
  }
#endif
}

BufferPool::BufferPool(StorageDevice* device, size_t capacity)
    : device_(device) {
  assert(capacity >= 1);
  capacity_ = capacity;
  frames_ = std::make_unique<Frame[]>(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_[i].data = AllocatePageBuffer();
  }
  shards_ = std::make_unique<Shard[]>(kShardCount);
  free_frames_.reserve(capacity);
  for (size_t i = capacity; i > 0; --i) free_frames_.push_back(i - 1);
}

BufferPool::BufferPool(std::unique_ptr<StorageDevice> device, size_t capacity)
    : BufferPool(device.get(), capacity) {
  owned_device_ = std::move(device);
}

BufferPool::~BufferPool() {
  // Async completion callbacks capture `this`; none may run past here.
  DrainAsyncIo();
  // Best-effort writeback. A destructor cannot propagate the status, but
  // silently discarding dirty data would hide real corruption — report it.
  Status s = FlushAll();
  if (!s.ok()) {
    std::fprintf(stderr,
                 "fieldrep: BufferPool writeback failed at shutdown, dirty "
                 "pages lost: %s\n",
                 s.ToString().c_str());
  }
}

Status BufferPool::FetchPage(PageId page_id, PageGuard* guard,
                             LatchMode mode) {
  stats_.fetches.fetch_add(1, kRelaxed);
  Shard& shard = ShardFor(page_id);
  size_t frame_index = kFrameInFlight;
  bool waited_in_flight = false;
  {
    UniqueMutexLock lock(shard.mu);
    for (;;) {
      auto it = shard.table.find(page_id);
      if (it == shard.table.end()) {
        // Miss: claim the fill so concurrent fetchers of this page wait
        // for our device read instead of issuing their own (single-flight
        // — also what keeps the logical counters interleaving-invariant).
        shard.table.emplace(page_id, kFrameInFlight);
        break;
      }
      if (it->second == kFrameInFlight) {
        waited_in_flight = true;
        shard.cv.wait(lock);
        continue;  // installed, or abandoned (then we claim the fill)
      }
      frame_index = it->second;
      Frame& frame = frames_[frame_index];
      if (frame.prefetched.load(kRelaxed)) {
        // First logical access of a prefetched page: charge the read the
        // caller would have performed without read-ahead, so the logical
        // counters are independent of the read-ahead window.
        frame.prefetched.store(false, kRelaxed);
        stats_.disk_reads.fetch_add(1, kRelaxed);
        shard.misses.fetch_add(1, kRelaxed);
      } else {
        stats_.hits.fetch_add(1, kRelaxed);
        shard.hits.fetch_add(1, kRelaxed);
      }
      frame.pin_count.fetch_add(1, kRelaxed);
      frame.referenced.store(true, kRelaxed);
      break;
    }
  }
  if (waited_in_flight) single_flight_waits_.fetch_add(1, kRelaxed);

  if (frame_index != kFrameInFlight) {
    // Hit. The pin (taken under the shard lock) keeps the frame resident;
    // the latch is acquired with no other lock held, so blocking on a
    // writer here cannot deadlock.
    Frame& frame = frames_[frame_index];
    LatchFrame(frame, mode);
    if (mode == LatchMode::kExclusive && observer_ != nullptr) {
      observer_->OnPageAccess(page_id, frame.data.get());
    }
    *guard = PageGuard(this, frame_index, mode);
    return Status::OK();
  }

  // Miss with the fill claimed: take a victim and read the device.
  {
    MutexLock victim_lock(victim_mutex_);
    Status s = GetVictimFrame(&frame_index);
    if (!s.ok()) {
      AbandonFill(page_id, kFrameInFlight);
      return s;
    }
    // Claim against concurrent sweeps before victim_mutex_ drops: the
    // frame is off the free list and out of the table, and a nonzero pin
    // keeps the clock hand away while we fill it.
    frames_[frame_index].pin_count.store(1, kRelaxed);
  }
  Frame& frame = frames_[frame_index];
  uint64_t start_ns = NowNs();
  Status s = device_->ReadPage(page_id, frame.data.get());
  stats_.read_ns.fetch_add(NowNs() - start_ns, kRelaxed);
  if (!s.ok()) {
    AbandonFill(page_id, frame_index);
    return s;
  }
  stats_.disk_reads.fetch_add(1, kRelaxed);
  stats_.bytes_read.fetch_add(kPageSize, kRelaxed);
  shard.misses.fetch_add(1, kRelaxed);
  // Page 0 is the magic-prefixed database header, not a headered page.
  if (verify_checksums_.load(kRelaxed) && page_id != 0 &&
      !VerifyPageChecksum(frame.data.get())) {
    AbandonFill(page_id, frame_index);
    return Status::Corruption(
        StringPrintf("page %u failed checksum verification", page_id));
  }
  frame.page_id.store(page_id, kRelaxed);
  frame.page_lsn.store(0, kRelaxed);
  frame.dirty.store(false, kRelaxed);
  frame.referenced.store(true, kRelaxed);
  // Release pairs with the acquire loads in the whole-pool walks: a walk
  // that observes in_use == true reads this fill's page_id, not a stale
  // one (the walk holds no shard lock, so the atomics carry the ordering).
  frame.in_use.store(true, std::memory_order_release);
  frame.prefetched.store(false, kRelaxed);
  {
    MutexLock lock(shard.mu);
    shard.table[page_id] = frame_index;
  }
  shard.cv.notify_all();
  LatchFrame(frame, mode);
  if (mode == LatchMode::kExclusive && observer_ != nullptr) {
    observer_->OnPageAccess(page_id, frame.data.get());
  }
  *guard = PageGuard(this, frame_index, mode);
  return Status::OK();
}

void BufferPool::LatchFrame(Frame& frame, LatchMode mode) {
  if (mode == LatchMode::kExclusive) {
    if (!frame.latch.try_lock()) {
      latch_waits_.fetch_add(1, kRelaxed);
      frame.latch.lock();
    }
  } else {
    if (!frame.latch.try_lock_shared()) {
      latch_waits_.fetch_add(1, kRelaxed);
      frame.latch.lock_shared();
    }
  }
}

Status BufferPool::NewPage(PageGuard* guard) {
  PageId page_id;
  FIELDREP_RETURN_IF_ERROR(device_->AllocatePage(&page_id));
  Shard& shard = ShardFor(page_id);
  {
    // A stale concurrent fetch of this (previously unallocated) id may
    // have an in-flight marker up; wait it out, then claim the slot.
    UniqueMutexLock lock(shard.mu);
    shard.cv.wait(lock, [&] {
      auto it = shard.table.find(page_id);
      return it == shard.table.end() || it->second != kFrameInFlight;
    });
    assert(shard.table.count(page_id) == 0);
    shard.table.emplace(page_id, kFrameInFlight);
  }
  size_t frame_index;
  {
    MutexLock victim_lock(victim_mutex_);
    Status s = GetVictimFrame(&frame_index);
    if (!s.ok()) {
      AbandonFill(page_id, kFrameInFlight);
      return s;
    }
    frames_[frame_index].pin_count.store(1, kRelaxed);
  }
  Frame& frame = frames_[frame_index];
  std::memset(frame.data.get(), 0, kPageSize);
  frame.page_id.store(page_id, kRelaxed);
  frame.page_lsn.store(0, kRelaxed);
  // A fresh page is dirty by definition: its contents exist only here.
  frame.dirty.store(true, kRelaxed);
  frame.referenced.store(true, kRelaxed);
  frame.in_use.store(true, std::memory_order_release);
  frame.prefetched.store(false, kRelaxed);
  {
    MutexLock lock(shard.mu);
    shard.table[page_id] = frame_index;
  }
  shard.cv.notify_all();
  LatchFrame(frame, LatchMode::kExclusive);
  if (observer_ != nullptr) {
    observer_->OnPageAccess(page_id, frame.data.get());
    observer_->OnPageDirtied(page_id);
  }
  *guard = PageGuard(this, frame_index, LatchMode::kExclusive);
  return Status::OK();
}

Status BufferPool::Prefetch(std::span<const PageId> page_ids) {
  if (read_ahead_window_.load(kRelaxed) == 0 || page_ids.empty()) {
    return Status::OK();
  }

  // Distinct, in-range ids in ascending order (the device coalesces
  // contiguous runs, so sorted order maximises run length). Residency is
  // decided per shard at claim time below.
  std::vector<PageId> candidates(page_ids.begin(), page_ids.end());
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  const PageId device_pages = device_->page_count();
  std::erase_if(candidates, [&](PageId id) { return id >= device_pages; });
  if (candidates.empty()) return Status::OK();

  // Warm-path fast-out: drop ids that are already resident (or in
  // flight) before touching the global victim mutex, so a fully-resident
  // window costs only per-shard lookups and concurrent readers' prefetch
  // probes never serialize on victim_mutex_. Racy by design — the claim
  // loop below re-checks under the shard lock before claiming.
  std::erase_if(candidates, [&](PageId id) {
    Shard& shard = ShardFor(id);
    MutexLock lock(shard.mu);
    return shard.table.count(id) != 0;
  });
  if (candidates.empty()) return Status::OK();

  // Claim an in-flight table slot and a victim frame per non-resident id.
  // The pin keeps a later victim sweep in this same batch (and concurrent
  // sweeps once victim_mutex_ drops) from handing the frame out twice.
  std::vector<PrefetchClaim> claims;
  claims.reserve(candidates.size());
  Status claim_error;
  {
    MutexLock victim_lock(victim_mutex_);
    for (PageId id : candidates) {
      Shard& shard = ShardFor(id);
      {
        MutexLock lock(shard.mu);
        if (shard.table.count(id) != 0) continue;  // resident or in flight
        shard.table.emplace(id, kFrameInFlight);
      }
      size_t frame_index;
      Status s = GetVictimFrame(&frame_index);
      if (!s.ok()) {
        {
          MutexLock lock(shard.mu);
          shard.table.erase(id);
        }
        shard.cv.notify_all();
        if (s.IsFailedPrecondition()) break;  // all pinned: shrink the batch
        claim_error = s;  // dirty-victim writeback failed: real error
        break;
      }
      frames_[frame_index].pin_count.store(1, kRelaxed);
      claims.push_back(PrefetchClaim{id, frame_index});
    }
  }
  if (!claim_error.ok()) {
    for (const PrefetchClaim& claim : claims) {
      AbandonFill(claim.page_id, claim.frame_index);
    }
    return claim_error;
  }
  if (claims.empty()) return Status::OK();

  std::vector<PageId> ids(claims.size());
  std::vector<uint8_t*> bufs(claims.size());
  for (size_t i = 0; i < claims.size(); ++i) {
    ids[i] = claims[i].page_id;
    bufs[i] = frames_[claims[i].frame_index].data.get();
  }

  if (device_->async_io()) {
    // Fire-and-forget: a prefetch is a scheduling hint, so the caller
    // does not wait for the device. The completion callback (device
    // reaper thread) installs the frames; until then the in-flight
    // markers published above make concurrent fetchers of these pages
    // wait on the shard condvar, exactly as for a synchronous miss.
    stats_.async_reads.fetch_add(claims.size(), kRelaxed);
    BeginAsyncBatch();
    const uint64_t start_ns = NowNs();
    auto shared_claims =
        std::make_shared<std::vector<PrefetchClaim>>(std::move(claims));
    device_->ReadPagesAsync(
        std::move(ids), std::move(bufs),
        [this, shared_claims, start_ns](std::span<const Status> statuses) {
          stats_.read_ns.fetch_add(NowNs() - start_ns, kRelaxed);
          InstallPrefetchedPages(*shared_claims, statuses);
          EndAsyncBatch();
        });
    return Status::OK();
  }

  uint64_t start_ns = NowNs();
  Status s = device_->ReadPages(ids, bufs);
  stats_.read_ns.fetch_add(NowNs() - start_ns, kRelaxed);
  if (!s.ok()) {
    for (const PrefetchClaim& claim : claims) {
      AbandonFill(claim.page_id, claim.frame_index);
    }
    return s;
  }
  std::vector<Status> statuses(claims.size());
  InstallPrefetchedPages(claims, statuses);
  return Status::OK();
}

void BufferPool::InstallPrefetchedPages(std::span<const PrefetchClaim> claims,
                                        std::span<const Status> statuses) {
  const bool verify = verify_checksums_.load(kRelaxed);
  for (size_t i = 0; i < claims.size(); ++i) {
    const PrefetchClaim& claim = claims[i];
    Frame& frame = frames_[claim.frame_index];
    // A failed page is simply not installed (the claim is abandoned), so
    // the next on-demand fetch sees exactly what it would have seen
    // without read-ahead, and reports the error itself.
    if (!statuses[i].ok()) {
      AbandonFill(claim.page_id, claim.frame_index);
      continue;
    }
    stats_.batched_reads.fetch_add(1, kRelaxed);
    stats_.bytes_read.fetch_add(kPageSize, kRelaxed);
    // Same for a page failing checksum verification.
    if (verify && claim.page_id != 0 &&
        !VerifyPageChecksum(frame.data.get())) {
      AbandonFill(claim.page_id, claim.frame_index);
      continue;
    }
    frame.page_id.store(claim.page_id, kRelaxed);
    frame.page_lsn.store(0, kRelaxed);
    frame.dirty.store(false, kRelaxed);
    frame.referenced.store(true, kRelaxed);
    frame.in_use.store(true, std::memory_order_release);
    frame.prefetched.store(true, kRelaxed);
    Shard& shard = ShardFor(claim.page_id);
    {
      MutexLock lock(shard.mu);
      frame.pin_count.store(0, kRelaxed);
      shard.table[claim.page_id] = claim.frame_index;
    }
    shard.cv.notify_all();
  }
}

Status BufferPool::PrefetchOidPages(std::span<const Oid> oids) {
  if (read_ahead_window_.load(kRelaxed) == 0 || oids.empty()) {
    return Status::OK();
  }
  std::vector<PageId> pages;
  pages.reserve(oids.size());
  for (const Oid& oid : oids) {
    if (oid.valid()) pages.push_back(oid.page_id);
  }
  return Prefetch(pages);
}

void BufferPool::AbandonFill(PageId page_id, size_t frame_index) {
  if (frame_index != kFrameInFlight) {
    Frame& frame = frames_[frame_index];
    frame.in_use.store(false, kRelaxed);
    frame.page_id.store(kInvalidPageId, kRelaxed);
    frame.prefetched.store(false, kRelaxed);
    frame.pin_count.store(0, kRelaxed);
    MutexLock victim_lock(victim_mutex_);
    free_frames_.push_back(frame_index);
  }
  Shard& shard = ShardFor(page_id);
  {
    MutexLock lock(shard.mu);
    auto it = shard.table.find(page_id);
    if (it != shard.table.end() && it->second == kFrameInFlight) {
      shard.table.erase(it);
    }
  }
  shard.cv.notify_all();
}

Status BufferPool::WriteBackFrame(Frame& frame) {
  const PageId page_id = frame.page_id.load(kRelaxed);
  if (observer_ != nullptr) {
    FIELDREP_RETURN_IF_ERROR(
        observer_->BeforePageFlush(page_id, frame.page_lsn.load(kRelaxed)));
  }
  // Page 0 is the magic-prefixed database header, not a headered page.
  if (page_id != 0) StampPageChecksum(frame.data.get());
  uint64_t start_ns = NowNs();
  Status s = device_->WritePage(page_id, frame.data.get());
  stats_.write_ns.fetch_add(NowNs() - start_ns, kRelaxed);
  FIELDREP_RETURN_IF_ERROR(s);
  stats_.disk_writes.fetch_add(1, kRelaxed);
  stats_.bytes_written.fetch_add(kPageSize, kRelaxed);
  frame.dirty.store(false, kRelaxed);
  return Status::OK();
}

Status BufferPool::FlushFramesOrdered(std::vector<size_t> frame_indices) {
  std::sort(frame_indices.begin(), frame_indices.end(),
            [&](size_t a, size_t b) {
              return frames_[a].page_id.load(kRelaxed) <
                     frames_[b].page_id.load(kRelaxed);
            });
  const bool async = device_->async_io();
  // One contiguous-PageId run staged for the device. Heap-shared so the
  // async completion callback can outlive this frame of the loop; the
  // staged buffer is page-aligned for O_DIRECT devices.
  struct RunState {
    std::vector<PageId> ids;
    std::vector<size_t> frames;
    PageBuffer staged;
    std::vector<const uint8_t*> bufs;
    std::vector<Status> statuses;  // written by the completion callback
    bool done = false;             // GUARDED_BY(async_mu_) in spirit
    uint64_t start_ns = 0;
  };
  std::vector<std::shared_ptr<RunState>> submitted;
  Status stage_error;

  size_t i = 0;
  while (i < frame_indices.size()) {
    // Maximal contiguous PageId run starting at i.
    size_t run = 1;
    while (i + run < frame_indices.size() &&
           frames_[frame_indices[i + run]].page_id.load(kRelaxed) ==
               frames_[frame_indices[i]].page_id.load(kRelaxed) + run) {
      ++run;
    }
    auto rs = std::make_shared<RunState>();
    rs->ids.resize(run);
    rs->frames.resize(run);
    rs->staged = AllocatePageBuffer(run);
    rs->bufs.resize(run);
    // Stage each page's bytes under its exclusive latch (checksum
    // stamping mutates them and the copy needs them stable against
    // shared-latch readers), one frame at a time: the flusher never holds
    // two latches, so it cannot form a cycle with a writer that latches
    // page A while fetching page B. The copy is noise next to the write
    // syscall it feeds. WAL flush ordering holds on both device paths:
    // BeforePageFlush blocks until the page's LSN is durable BEFORE its
    // bytes are staged, let alone handed to the device.
    for (size_t j = 0; j < run; ++j) {
      Frame& frame = frames_[frame_indices[i + j]];
      const PageId page_id = frame.page_id.load(kRelaxed);
      if (observer_ != nullptr) {
        Status s = observer_->BeforePageFlush(page_id,
                                              frame.page_lsn.load(kRelaxed));
        if (!s.ok()) {
          stage_error = Status(s.code(),
                               StringPrintf("flushing page %u: %s", page_id,
                                            s.message().c_str()));
          break;
        }
      }
      {
        WriterMutexLock latch(frame.latch);
        if (page_id != 0) StampPageChecksum(frame.data.get());
        std::memcpy(rs->staged.get() + j * kPageSize, frame.data.get(),
                    kPageSize);
      }
      rs->ids[j] = page_id;
      rs->frames[j] = frame_indices[i + j];
      rs->bufs[j] = rs->staged.get() + j * kPageSize;
    }
    if (!stage_error.ok()) break;  // unstaged frames simply stay dirty

    if (async) {
      // Submit and move on to staging the next run: the device overlaps
      // the runs' writes. Completion is awaited below, so this function's
      // post-conditions match the synchronous path exactly.
      stats_.async_writes.fetch_add(run, kRelaxed);
      BeginAsyncBatch();
      rs->start_ns = NowNs();
      submitted.push_back(rs);
      device_->WritePagesAsync(
          rs->ids, rs->bufs, [this, rs](std::span<const Status> statuses) {
            stats_.write_ns.fetch_add(NowNs() - rs->start_ns, kRelaxed);
            rs->statuses.assign(statuses.begin(), statuses.end());
            {
              MutexLock lock(async_mu_);
              rs->done = true;
            }
            EndAsyncBatch();
          });
    } else {
      uint64_t start_ns = NowNs();
      Status s = device_->WritePages(rs->ids, rs->bufs);
      stats_.write_ns.fetch_add(NowNs() - start_ns, kRelaxed);
      if (!s.ok()) {
        // A prefix of the run may have reached the device; the frames
        // stay dirty, so a later flush rewrites them — always safe.
        return Status(s.code(),
                      StringPrintf("flushing pages %u..%u: %s",
                                   rs->ids.front(), rs->ids.back(),
                                   s.message().c_str()));
      }
      for (size_t j = 0; j < run; ++j) {
        frames_[rs->frames[j]].dirty.store(false, kRelaxed);
      }
      stats_.disk_writes.fetch_add(run, kRelaxed);
      stats_.bytes_written.fetch_add(run * kPageSize, kRelaxed);
      if (run > 1) stats_.coalesced_writes.fetch_add(run, kRelaxed);
    }
    i += run;
  }
  if (submitted.empty()) return stage_error;

  // Wait for this call's runs (not unrelated prefetches), then settle:
  // pages whose write completed drop their dirty bit; pages whose
  // write-back failed STAY DIRTY — a later flush rewrites them — and are
  // named in the returned status.
  {
    UniqueMutexLock lock(async_mu_);
    async_cv_.wait(lock, [&] {
      for (const auto& rs : submitted) {
        if (!rs->done) return false;
      }
      return true;
    });
  }
  std::string failed_pages;
  Status first_write_error;
  for (const auto& rs : submitted) {
    const size_t run = rs->ids.size();
    for (size_t j = 0; j < run; ++j) {
      const Status& s = rs->statuses[j];
      if (s.ok()) {
        frames_[rs->frames[j]].dirty.store(false, kRelaxed);
        stats_.disk_writes.fetch_add(1, kRelaxed);
        stats_.bytes_written.fetch_add(kPageSize, kRelaxed);
        if (run > 1) stats_.coalesced_writes.fetch_add(1, kRelaxed);
      } else {
        if (first_write_error.ok()) first_write_error = s;
        if (!failed_pages.empty()) failed_pages += ", ";
        failed_pages += StringPrintf("%u", rs->ids[j]);
      }
    }
  }
  if (!first_write_error.ok()) {
    return Status(first_write_error.code(),
                  StringPrintf("async write-back failed for pages [%s] "
                               "(frames stay dirty): %s",
                               failed_pages.c_str(),
                               first_write_error.message().c_str()));
  }
  return stage_error;
}

Status BufferPool::FlushAll() {
  // Collect-and-pin under victim_mutex_, then flush without it: frame
  // latches are only ever acquired after (never under) the victim lock,
  // and the extra pin keeps each collected frame from being evicted or
  // repurposed once the lock drops.
  std::vector<size_t> dirty;
  {
    MutexLock victim_lock(victim_mutex_);
    for (size_t i = 0; i < capacity_; ++i) {
      Frame& frame = frames_[i];
      if (!frame.in_use.load(std::memory_order_acquire) ||
          !frame.dirty.load(kRelaxed)) {
        continue;
      }
      if (observer_ != nullptr &&
          !observer_->CanEvict(frame.page_id.load(kRelaxed))) {
        // Uncommitted transaction page: commit will release it; a crash
        // before then must leave the device without it (atomicity).
        continue;
      }
      frame.pin_count.fetch_add(1, kRelaxed);
      dirty.push_back(i);
    }
  }
  Status s = FlushFramesOrdered(dirty);
  for (size_t i : dirty) frames_[i].pin_count.fetch_sub(1, kRelaxed);
  return s;
}

Status BufferPool::EvictAll() {
  // In-flight async prefetch claims hold a pin; let them settle so the
  // precondition scan below sees a quiesced pool.
  DrainAsyncIo();
  {
    MutexLock victim_lock(victim_mutex_);
    for (size_t i = 0; i < capacity_; ++i) {
      const Frame& frame = frames_[i];
      if (!frame.in_use.load(std::memory_order_acquire)) continue;
      const PageId page_id = frame.page_id.load(kRelaxed);
      if (frame.pin_count.load(kRelaxed) > 0) {
        return Status::FailedPrecondition(
            StringPrintf("page %u still pinned", page_id));
      }
      if (frame.dirty.load(kRelaxed) && observer_ != nullptr &&
          !observer_->CanEvict(page_id)) {
        return Status::FailedPrecondition(StringPrintf(
            "page %u holds uncommitted transaction writes", page_id));
      }
    }
  }
  // EvictAll's contract is quiescence (no concurrent pins or fetches —
  // the precondition scan above already depends on it), so the victim
  // lock need not be held continuously; holding it across the flush
  // would invert the frame-latch → victim_mutex_ order.
  FIELDREP_RETURN_IF_ERROR(FlushAll());
  MutexLock victim_lock(victim_mutex_);
  for (size_t i = 0; i < capacity_; ++i) {
    Frame& frame = frames_[i];
    if (frame.in_use.load(std::memory_order_acquire)) {
      const PageId page_id = frame.page_id.load(kRelaxed);
      Shard& shard = ShardFor(page_id);
      {
        MutexLock lock(shard.mu);
        shard.table.erase(page_id);
      }
      frame.in_use.store(false, kRelaxed);
      frame.page_id.store(kInvalidPageId, kRelaxed);
      frame.referenced.store(false, kRelaxed);
      frame.prefetched.store(false, kRelaxed);
      free_frames_.push_back(i);
    }
  }
  return Status::OK();
}

const uint8_t* BufferPool::PeekPage(PageId page_id) const {
  Shard& shard = ShardFor(page_id);
  MutexLock lock(shard.mu);
  auto it = shard.table.find(page_id);
  if (it == shard.table.end() || it->second == kFrameInFlight) return nullptr;
  return frames_[it->second].data.get();
}

void BufferPool::SetPageLsn(PageId page_id, uint64_t lsn) {
  Shard& shard = ShardFor(page_id);
  MutexLock lock(shard.mu);
  auto it = shard.table.find(page_id);
  if (it == shard.table.end() || it->second == kFrameInFlight) return;
  frames_[it->second].page_lsn.store(lsn, kRelaxed);
}

std::vector<PageId> BufferPool::DirtyPageIds() const {
  MutexLock victim_lock(victim_mutex_);
  std::vector<PageId> ids;
  for (size_t i = 0; i < capacity_; ++i) {
    const Frame& frame = frames_[i];
    if (frame.in_use.load(std::memory_order_acquire) &&
        frame.dirty.load(kRelaxed)) {
      ids.push_back(frame.page_id.load(kRelaxed));
    }
  }
  return ids;
}

void BufferPool::BeginAsyncBatch() {
  MutexLock lock(async_mu_);
  ++async_inflight_;
}

void BufferPool::EndAsyncBatch() {
  MutexLock lock(async_mu_);
  --async_inflight_;
  async_cv_.notify_all();
}

void BufferPool::DrainAsyncIo() {
  UniqueMutexLock lock(async_mu_);
  async_cv_.wait(lock, [&]() NO_THREAD_SAFETY_ANALYSIS {
    return async_inflight_ == 0;
  });
}

Status BufferPool::SyncDevice() {
  uint64_t start_ns = NowNs();
  Status s = device_->Sync();
  stats_.sync_ns.fetch_add(NowNs() - start_ns, kRelaxed);
  FIELDREP_RETURN_IF_ERROR(s);
  stats_.disk_syncs.fetch_add(1, kRelaxed);
  return Status::OK();
}

size_t BufferPool::pages_cached() const {
  size_t cached = 0;
  for (size_t i = 0; i < kShardCount; ++i) {
    MutexLock lock(shards_[i].mu);
    for (const auto& [page_id, frame_index] : shards_[i].table) {
      if (frame_index != kFrameInFlight) ++cached;
    }
  }
  return cached;
}

uint64_t BufferPool::total_pins() const {
  uint64_t total = 0;
  for (size_t i = 0; i < capacity_; ++i) {
    total += frames_[i].pin_count.load(kRelaxed);
  }
  return total;
}

Status BufferPool::GetVictimFrame(size_t* frame_index) {
  if (!free_frames_.empty()) {
    *frame_index = free_frames_.back();
    free_frames_.pop_back();
    return Status::OK();
  }
  // Clock sweep: a frame survives one pass if its reference bit is set.
  // Two full passes guarantee we either find an unpinned victim or prove
  // every frame is pinned.
  const size_t n = capacity_;
  for (size_t step = 0; step < 2 * n; ++step) {
    eviction_scan_steps_.fetch_add(1, kRelaxed);
    Frame& frame = frames_[clock_hand_];
    size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (!frame.in_use.load(std::memory_order_acquire)) {
      continue;  // abandoned-fill limbo
    }
    if (frame.pin_count.load(kRelaxed) > 0) continue;
    // Stable while we hold victim_mutex_ (fills only reuse frames the
    // sweep handed out); the acquire load above ordered it.
    PageId victim_page = frame.page_id.load(kRelaxed);
    Shard& shard = ShardFor(victim_page);
    UniqueMutexLock lock(shard.mu);
    // Re-check under the shard lock: pins originate in the hit path, which
    // runs under this lock, so pin_count == 0 here is authoritative — and
    // implies the frame's latch is free too.
    if (frame.pin_count.load(kRelaxed) > 0) continue;
    if (frame.dirty.load(kRelaxed) && observer_ != nullptr &&
        !observer_->CanEvict(victim_page)) {
      continue;  // no-steal: uncommitted pages stay resident
    }
    if (frame.referenced.load(kRelaxed)) {
      frame.referenced.store(false, kRelaxed);
      continue;
    }
    if (frame.dirty.load(kRelaxed)) {
      // Mark the entry in-flight for the duration of the writeback: a
      // concurrent fetcher must wait for the device write to finish, not
      // re-read stale bytes from the device.
      shard.table[victim_page] = kFrameInFlight;
      lock.unlock();
      Status s = WriteBackFrame(frame);
      lock.lock();
      if (!s.ok()) {
        shard.table[victim_page] = index;  // still resident, still dirty
        lock.unlock();
        shard.cv.notify_all();
        return s;
      }
    }
    shard.table.erase(victim_page);
    lock.unlock();
    shard.cv.notify_all();
    frame.in_use.store(false, kRelaxed);
    frame.page_id.store(kInvalidPageId, kRelaxed);
    frame.prefetched.store(false, kRelaxed);
    frame.page_lsn.store(0, kRelaxed);
    frame.referenced.store(false, kRelaxed);
    evictions_.fetch_add(1, kRelaxed);
    *frame_index = index;
    return Status::OK();
  }
  return Status::FailedPrecondition("all buffer frames are pinned");
}

BufferPool::ConcurrencyStats BufferPool::concurrency_stats() const {
  ConcurrencyStats out;
  out.latch_waits = latch_waits_.load(kRelaxed);
  out.single_flight_waits = single_flight_waits_.load(kRelaxed);
  out.eviction_scan_steps = eviction_scan_steps_.load(kRelaxed);
  out.evictions = evictions_.load(kRelaxed);
  return out;
}

void BufferPool::CollectMetrics(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value, std::string labels = "") {
    MetricSample s;
    s.name = name;
    s.labels = std::move(labels);
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  const IoStats io = stats();
#define FIELDREP_POOL_IO_SAMPLE(field)                                     \
  add("fieldrep_pool_" #field "_total", "Buffer pool IoStats field.",      \
      MetricKind::kCounter, static_cast<double>(io.field));
  FIELDREP_IO_STATS_FIELDS(FIELDREP_POOL_IO_SAMPLE)
#undef FIELDREP_POOL_IO_SAMPLE
  const ConcurrencyStats cs = concurrency_stats();
  add("fieldrep_pool_latch_waits_total",
      "Frame latch acquisitions that had to block.", MetricKind::kCounter,
      static_cast<double>(cs.latch_waits));
  add("fieldrep_pool_single_flight_waits_total",
      "Fetches that waited on another fetcher's in-flight device read.",
      MetricKind::kCounter, static_cast<double>(cs.single_flight_waits));
  add("fieldrep_pool_eviction_scan_steps_total",
      "Clock-hand steps examined while hunting victims.",
      MetricKind::kCounter, static_cast<double>(cs.eviction_scan_steps));
  add("fieldrep_pool_evictions_total",
      "Occupied frames reclaimed by the clock sweep.", MetricKind::kCounter,
      static_cast<double>(cs.evictions));
  add("fieldrep_pool_capacity_frames", "Total frames in the pool.",
      MetricKind::kGauge, static_cast<double>(capacity_));
  add("fieldrep_pool_pages_cached", "Resident (installed) pages.",
      MetricKind::kGauge, static_cast<double>(pages_cached()));
  add("fieldrep_pool_pinned_pages", "Sum of frame pin counts.",
      MetricKind::kGauge, static_cast<double>(total_pins()));
  add("fieldrep_pool_read_ahead_window", "Current read-ahead window.",
      MetricKind::kGauge,
      static_cast<double>(read_ahead_window_.load(kRelaxed)));
  for (size_t i = 0; i < kShardCount; ++i) {
    const uint64_t hits = shards_[i].hits.load(kRelaxed);
    const uint64_t misses = shards_[i].misses.load(kRelaxed);
    if (hits == 0 && misses == 0) continue;  // keep idle shards quiet
    std::string labels = StringPrintf("shard=\"%zu\"", i);
    add("fieldrep_pool_shard_hits_total",
        "Fetches satisfied from the cache, by page-table shard.",
        MetricKind::kCounter, static_cast<double>(hits), labels);
    add("fieldrep_pool_shard_misses_total",
        "Fetches charged a logical disk read, by page-table shard.",
        MetricKind::kCounter, static_cast<double>(misses), labels);
  }
}

void BufferPool::Unpin(size_t frame_index, LatchMode mode) {
  Frame& frame = frames_[frame_index];
  if (mode == LatchMode::kExclusive) {
    frame.latch.unlock();
  } else {
    frame.latch.unlock_shared();
  }
  assert(frame.pin_count.load(kRelaxed) > 0);
  frame.pin_count.fetch_sub(1, kRelaxed);
}

}  // namespace fieldrep
