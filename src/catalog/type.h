#ifndef FIELDREP_CATALOG_TYPE_H_
#define FIELDREP_CATALOG_TYPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace fieldrep {

/// Attribute (field) types supported by the data model. This is the subset
/// of EXTRA the paper exercises: scalar fields, fixed-length character
/// fields, variable strings, and reference attributes implemented as OIDs.
enum class FieldType : uint8_t {
  kInt32 = 0,   ///< the paper's `int`
  kInt64 = 1,
  kDouble = 2,
  kChar = 3,    ///< fixed-length `char[n]`, padded with NULs
  kString = 4,  ///< variable-length string (u32 length prefix)
  kRef = 5,     ///< reference attribute: an 8-byte OID
};

const char* FieldTypeName(FieldType type);

/// \brief One attribute of a type definition.
struct AttributeDescriptor {
  std::string name;
  FieldType type = FieldType::kInt32;
  /// For kChar: the fixed byte length n of char[n].
  uint32_t char_length = 0;
  /// For kRef: the name of the referenced type (e.g. "DEPT").
  std::string ref_type;

  /// Serialized size in bytes; kString contributes its 4-byte length prefix
  /// only (the payload is variable).
  uint32_t FixedBytes() const;

  bool is_ref() const { return type == FieldType::kRef; }
  bool is_scalar() const { return type != FieldType::kRef; }

  std::string ToString() const;
};

/// Convenience constructors.
AttributeDescriptor Int32Attr(std::string name);
AttributeDescriptor Int64Attr(std::string name);
AttributeDescriptor DoubleAttr(std::string name);
AttributeDescriptor CharAttr(std::string name, uint32_t length);
AttributeDescriptor StringAttr(std::string name);
AttributeDescriptor RefAttr(std::string name, std::string ref_type);

/// \brief A type definition, e.g. the paper's
/// `define type EMP (name: char[], age: int, salary: int, dept: ref DEPT)`.
///
/// Type tags (Section 2.2: "every object contains a type-tag") are assigned
/// by the Catalog when the type is defined.
class TypeDescriptor {
 public:
  TypeDescriptor() = default;
  TypeDescriptor(std::string name, std::vector<AttributeDescriptor> attrs)
      : name_(std::move(name)), attributes_(std::move(attrs)) {}

  const std::string& name() const { return name_; }
  uint16_t type_tag() const { return type_tag_; }
  void set_type_tag(uint16_t tag) { type_tag_ = tag; }

  const std::vector<AttributeDescriptor>& attributes() const {
    return attributes_;
  }
  size_t attribute_count() const { return attributes_.size(); }
  const AttributeDescriptor& attribute(size_t i) const {
    return attributes_[i];
  }

  /// Index of the attribute named `name`, or -1.
  int FindAttribute(const std::string& name) const;

  /// Indices of all scalar (non-ref) attributes, the set replicated by a
  /// `.all` path (Section 3.3.1).
  std::vector<int> ScalarAttributeIndices() const;

  /// Checks for duplicate attribute names and ill-formed attributes.
  Status Validate() const;

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<AttributeDescriptor> attributes_;
  uint16_t type_tag_ = 0;
};

}  // namespace fieldrep

#endif  // FIELDREP_CATALOG_TYPE_H_
