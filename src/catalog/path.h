#ifndef FIELDREP_CATALOG_PATH_H_
#define FIELDREP_CATALOG_PATH_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace fieldrep {

/// \brief One hop of a reference path: the ref attribute traversed and the
/// types on either side.
struct PathStep {
  std::string attr_name;    ///< e.g. "dept"
  int attr_index = -1;      ///< index of the attribute in `source_type`
  std::string source_type;  ///< e.g. "EMP"
  std::string target_type;  ///< e.g. "DEPT"
};

/// \brief A reference path bound against the catalog, e.g.
/// `Emp1.dept.org.name` = head set Emp1, steps [dept, org], terminal field
/// `name` of type ORG.
///
/// Replication is associated with instance (the set), not type
/// (Section 3.2), so a path always starts at a named set.
struct BoundPath {
  std::string set_name;
  std::vector<PathStep> steps;
  std::string terminal_type;       ///< type at the end of the last step
  bool all = false;                ///< `.all` paths (Section 3.3.1)
  std::vector<int> terminal_fields;  ///< replicated attribute indices

  /// Number of functional joins the path represents (its "level").
  size_t level() const { return steps.size(); }

  /// Renders the canonical dotted form, e.g. "Emp1.dept.org.name".
  std::string ToString() const;
};

/// Splits a dotted path expression "Set.a.b.c" into its set name and
/// components. Validates lexical shape only (binding happens in Catalog).
Status ParsePathExpression(const std::string& text, std::string* set_name,
                           std::vector<std::string>* components);

}  // namespace fieldrep

#endif  // FIELDREP_CATALOG_PATH_H_
