#ifndef FIELDREP_CATALOG_CATALOG_H_
#define FIELDREP_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/link_registry.h"
#include "catalog/path.h"
#include "catalog/type.h"
#include "common/status.h"
#include "storage/page.h"

namespace fieldrep {

/// \brief Catalog record for a named top-level set
/// (`create Emp1: {own ref EMP}`), stored as one disk file (Section 2.2).
struct SetInfo {
  std::string name;
  std::string type_name;
  FileId file_id = kInvalidFileId;
};

/// \brief Catalog record for a B+ tree index.
///
/// `key_expr` is either a plain attribute ("salary") or a dotted reference
/// path ("dept.org.name"); the latter requires the path to be replicated
/// in-place so the index can be built on the stored replica values
/// (Section 3.3.4).
struct IndexInfo {
  std::string name;
  std::string set_name;
  std::string key_expr;
  bool clustered = false;
  /// For plain-attribute indexes: the attribute index; -1 for path indexes.
  int attr_index = -1;
  /// For path indexes: the replication path whose replica values are keyed.
  uint16_t path_id = 0;
  bool is_path_index = false;
  FileId file_id = kInvalidFileId;
};

/// \brief The system catalog: types, sets, indexes, replication paths, and
/// the link registry.
///
/// The catalog is pure metadata; files and indexes themselves are owned by
/// the Database.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- Types ---------------------------------------------------------------

  /// Registers a type, assigning its type tag.
  Status DefineType(TypeDescriptor type);
  Result<const TypeDescriptor*> GetType(const std::string& name) const;
  Result<const TypeDescriptor*> GetTypeByTag(uint16_t tag) const;
  bool HasType(const std::string& name) const {
    return types_by_name_.count(name) != 0;
  }

  // --- Sets ----------------------------------------------------------------

  /// Registers a set of `type_name` objects and allocates its file id.
  Status CreateSet(const std::string& name, const std::string& type_name,
                   FileId* file_id);
  Result<const SetInfo*> GetSet(const std::string& name) const;
  Result<const SetInfo*> GetSetForFile(FileId file_id) const;
  std::vector<std::string> SetNames() const;

  /// Allocates a file id for an auxiliary file (link set, replica set,
  /// index, output file). Atomic: a read query creating the output file
  /// may race DDL running under the schema lock.
  FileId AllocateFileId() {
    return next_file_id_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Path binding ----------------------------------------------------------

  /// Binds a dotted expression ("Emp1.dept.org.name", "Emp1.dept.all",
  /// "Emp1.salary") against types and sets. Zero-step paths are allowed
  /// here (plain attributes); replication additionally requires >= 1 step.
  Status BindPath(const std::string& expr, BoundPath* out) const;

  // --- Replication paths -----------------------------------------------------

  /// Registers a fully-populated path record, assigning `info.id`.
  Status RegisterReplicationPath(ReplicationPathInfo info, uint16_t* id);
  Status DropReplicationPath(uint16_t id);
  const ReplicationPathInfo* GetPath(uint16_t id) const;
  ReplicationPathInfo* GetMutablePath(uint16_t id);
  const ReplicationPathInfo* FindPathBySpec(const std::string& spec) const;
  /// Paths whose head set is `set_name`.
  std::vector<uint16_t> PathsHeadedAt(const std::string& set_name) const;
  std::vector<uint16_t> AllPathIds() const;

  LinkRegistry& link_registry() { return link_registry_; }
  const LinkRegistry& link_registry() const { return link_registry_; }

  // --- Indexes ---------------------------------------------------------------

  Status RegisterIndex(IndexInfo info);
  Status DropIndex(const std::string& name);
  const IndexInfo* FindIndexByName(const std::string& name) const;
  /// The first index on `set_name` whose key expression is `key_expr`.
  const IndexInfo* FindIndex(const std::string& set_name,
                             const std::string& key_expr) const;
  std::vector<const IndexInfo*> IndexesOnSet(const std::string& set_name) const;

  /// Human-readable dump of the whole catalog (for examples and debugging).
  std::string Describe() const;

  /// Serialization for database checkpoints: types, sets, replication
  /// paths, the link registry, indexes, and the id counters.
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(class ByteReader* reader);

 private:
  std::map<std::string, TypeDescriptor> types_by_name_;
  std::map<uint16_t, std::string> types_by_tag_;
  uint16_t next_type_tag_ = 1;

  std::map<std::string, SetInfo> sets_;
  std::map<FileId, std::string> sets_by_file_;
  std::atomic<FileId> next_file_id_{1};

  std::map<uint16_t, ReplicationPathInfo> paths_;
  uint16_t next_path_id_ = 1;
  LinkRegistry link_registry_;

  std::map<std::string, IndexInfo> indexes_;
};

}  // namespace fieldrep

#endif  // FIELDREP_CATALOG_CATALOG_H_
