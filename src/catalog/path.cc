#include "catalog/path.h"

#include <cctype>

#include "common/strings.h"

namespace fieldrep {

std::string BoundPath::ToString() const {
  std::string out = set_name;
  for (const PathStep& step : steps) {
    out += "." + step.attr_name;
  }
  if (all) {
    out += ".all";
  } else if (terminal_fields.size() == 1) {
    // The terminal attribute name is not stored; callers wanting the exact
    // original text keep it themselves. We re-render from what we know.
    out += StringPrintf(".<field#%d>", terminal_fields[0]);
  }
  return out;
}

namespace {
bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}
}  // namespace

Status ParsePathExpression(const std::string& text, std::string* set_name,
                           std::vector<std::string>* components) {
  std::vector<std::string> parts =
      SplitString(std::string(TrimWhitespace(text)), '.');
  if (parts.size() < 2) {
    return Status::InvalidArgument("path '" + text +
                                   "' needs at least Set.attribute");
  }
  for (const std::string& part : parts) {
    if (!IsIdentifier(part)) {
      return Status::InvalidArgument("bad path component '" + part + "' in '" +
                                     text + "'");
    }
  }
  *set_name = parts[0];
  components->assign(parts.begin() + 1, parts.end());
  return Status::OK();
}

}  // namespace fieldrep
