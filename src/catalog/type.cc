#include "catalog/type.h"

#include <unordered_set>

#include "common/strings.h"

namespace fieldrep {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kInt32:
      return "int";
    case FieldType::kInt64:
      return "int64";
    case FieldType::kDouble:
      return "double";
    case FieldType::kChar:
      return "char[]";
    case FieldType::kString:
      return "string";
    case FieldType::kRef:
      return "ref";
  }
  return "?";
}

uint32_t AttributeDescriptor::FixedBytes() const {
  switch (type) {
    case FieldType::kInt32:
      return 4;
    case FieldType::kInt64:
    case FieldType::kDouble:
    case FieldType::kRef:
      return 8;
    case FieldType::kChar:
      return char_length;
    case FieldType::kString:
      return 4;  // length prefix
  }
  return 0;
}

std::string AttributeDescriptor::ToString() const {
  if (type == FieldType::kRef) {
    return name + ": ref " + ref_type;
  }
  if (type == FieldType::kChar) {
    return StringPrintf("%s: char[%u]", name.c_str(), char_length);
  }
  return name + ": " + FieldTypeName(type);
}

AttributeDescriptor Int32Attr(std::string name) {
  return {std::move(name), FieldType::kInt32, 0, ""};
}
AttributeDescriptor Int64Attr(std::string name) {
  return {std::move(name), FieldType::kInt64, 0, ""};
}
AttributeDescriptor DoubleAttr(std::string name) {
  return {std::move(name), FieldType::kDouble, 0, ""};
}
AttributeDescriptor CharAttr(std::string name, uint32_t length) {
  return {std::move(name), FieldType::kChar, length, ""};
}
AttributeDescriptor StringAttr(std::string name) {
  return {std::move(name), FieldType::kString, 0, ""};
}
AttributeDescriptor RefAttr(std::string name, std::string ref_type) {
  return {std::move(name), FieldType::kRef, 0, std::move(ref_type)};
}

int TypeDescriptor::FindAttribute(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> TypeDescriptor::ScalarAttributeIndices() const {
  std::vector<int> out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].is_scalar()) out.push_back(static_cast<int>(i));
  }
  return out;
}

Status TypeDescriptor::Validate() const {
  if (name_.empty()) return Status::InvalidArgument("type has no name");
  std::unordered_set<std::string> seen;
  for (const AttributeDescriptor& attr : attributes_) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute of " + name_ + " has no name");
    }
    if (!seen.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute " + attr.name +
                                     " in type " + name_);
    }
    if (attr.type == FieldType::kRef && attr.ref_type.empty()) {
      return Status::InvalidArgument("ref attribute " + attr.name +
                                     " names no target type");
    }
    if (attr.type == FieldType::kChar && attr.char_length == 0) {
      return Status::InvalidArgument("char attribute " + attr.name +
                                     " has zero length");
    }
  }
  return Status::OK();
}

std::string TypeDescriptor::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(attributes_.size());
  for (const AttributeDescriptor& attr : attributes_) {
    parts.push_back(attr.ToString());
  }
  return "define type " + name_ + " ( " + JoinStrings(parts, ", ") + " )";
}

}  // namespace fieldrep
