#include "catalog/catalog.h"

#include "common/bytes.h"
#include "common/strings.h"

namespace fieldrep {

Status Catalog::DefineType(TypeDescriptor type) {
  FIELDREP_RETURN_IF_ERROR(type.Validate());
  if (types_by_name_.count(type.name()) != 0) {
    return Status::AlreadyExists("type " + type.name() + " already defined");
  }
  // Ref targets may be defined later (mutually recursive types), but warn-
  // level validation of dangling refs happens at set creation / binding.
  type.set_type_tag(next_type_tag_++);
  types_by_tag_[type.type_tag()] = type.name();
  types_by_name_.emplace(type.name(), std::move(type));
  return Status::OK();
}

Result<const TypeDescriptor*> Catalog::GetType(const std::string& name) const {
  auto it = types_by_name_.find(name);
  if (it == types_by_name_.end()) {
    return Status::NotFound("no type named " + name);
  }
  return &it->second;
}

Result<const TypeDescriptor*> Catalog::GetTypeByTag(uint16_t tag) const {
  auto it = types_by_tag_.find(tag);
  if (it == types_by_tag_.end()) {
    return Status::NotFound(StringPrintf("no type with tag %u", tag));
  }
  return GetType(it->second);
}

Status Catalog::CreateSet(const std::string& name,
                          const std::string& type_name, FileId* file_id) {
  if (sets_.count(name) != 0) {
    return Status::AlreadyExists("set " + name + " already exists");
  }
  FIELDREP_ASSIGN_OR_RETURN(const TypeDescriptor* type, GetType(type_name));
  // All ref targets must resolve before objects can be stored.
  for (const AttributeDescriptor& attr : type->attributes()) {
    if (attr.is_ref() && types_by_name_.count(attr.ref_type) == 0) {
      return Status::FailedPrecondition(
          "set " + name + " has ref attribute " + attr.name +
          " to undefined type " + attr.ref_type);
    }
  }
  SetInfo info;
  info.name = name;
  info.type_name = type_name;
  info.file_id = AllocateFileId();
  sets_by_file_[info.file_id] = name;
  *file_id = info.file_id;
  sets_.emplace(name, std::move(info));
  return Status::OK();
}

Result<const SetInfo*> Catalog::GetSet(const std::string& name) const {
  auto it = sets_.find(name);
  if (it == sets_.end()) return Status::NotFound("no set named " + name);
  return &it->second;
}

Result<const SetInfo*> Catalog::GetSetForFile(FileId file_id) const {
  auto it = sets_by_file_.find(file_id);
  if (it == sets_by_file_.end()) {
    return Status::NotFound(StringPrintf("no set stored in file %u", file_id));
  }
  return GetSet(it->second);
}

std::vector<std::string> Catalog::SetNames() const {
  std::vector<std::string> out;
  out.reserve(sets_.size());
  for (const auto& [name, info] : sets_) out.push_back(name);
  return out;
}

Status Catalog::BindPath(const std::string& expr, BoundPath* out) const {
  std::string set_name;
  std::vector<std::string> components;
  FIELDREP_RETURN_IF_ERROR(ParsePathExpression(expr, &set_name, &components));
  FIELDREP_ASSIGN_OR_RETURN(const SetInfo* set, GetSet(set_name));
  FIELDREP_ASSIGN_OR_RETURN(const TypeDescriptor* type,
                            GetType(set->type_name));

  BoundPath bound;
  bound.set_name = set_name;
  const TypeDescriptor* current = type;
  for (size_t i = 0; i < components.size(); ++i) {
    const std::string& component = components[i];
    bool last = (i + 1 == components.size());
    if (last && component == "all") {
      // `.all` replicates every attribute of the terminal type
      // (Section 3.3.1: "all the information about an employee's
      // department").
      bound.all = true;
      bound.terminal_type = current->name();
      for (size_t j = 0; j < current->attribute_count(); ++j) {
        bound.terminal_fields.push_back(static_cast<int>(j));
      }
      *out = std::move(bound);
      return Status::OK();
    }
    int attr_index = current->FindAttribute(component);
    if (attr_index < 0) {
      return Status::InvalidArgument("type " + current->name() +
                                     " has no attribute '" + component +
                                     "' (in path " + expr + ")");
    }
    const AttributeDescriptor& attr = current->attribute(attr_index);
    if (!last) {
      if (!attr.is_ref()) {
        return Status::InvalidArgument(
            "attribute '" + component + "' of " + current->name() +
            " is not a reference attribute (in path " + expr + ")");
      }
      PathStep step;
      step.attr_name = component;
      step.attr_index = attr_index;
      step.source_type = current->name();
      step.target_type = attr.ref_type;
      bound.steps.push_back(std::move(step));
      FIELDREP_ASSIGN_OR_RETURN(current, GetType(attr.ref_type));
    } else {
      bound.terminal_type = current->name();
      bound.terminal_fields.push_back(attr_index);
    }
  }
  *out = std::move(bound);
  return Status::OK();
}

Status Catalog::RegisterReplicationPath(ReplicationPathInfo info,
                                        uint16_t* id) {
  if (FindPathBySpec(info.spec) != nullptr) {
    return Status::AlreadyExists("replication path " + info.spec +
                                 " already exists");
  }
  info.id = next_path_id_++;
  *id = info.id;
  paths_.emplace(info.id, std::move(info));
  return Status::OK();
}

Status Catalog::DropReplicationPath(uint16_t id) {
  if (paths_.erase(id) == 0) {
    return Status::NotFound(StringPrintf("no replication path %u", id));
  }
  link_registry_.ReleasePathLinks(id);
  return Status::OK();
}

const ReplicationPathInfo* Catalog::GetPath(uint16_t id) const {
  auto it = paths_.find(id);
  return it == paths_.end() ? nullptr : &it->second;
}

ReplicationPathInfo* Catalog::GetMutablePath(uint16_t id) {
  auto it = paths_.find(id);
  return it == paths_.end() ? nullptr : &it->second;
}

const ReplicationPathInfo* Catalog::FindPathBySpec(
    const std::string& spec) const {
  for (const auto& [id, info] : paths_) {
    if (info.spec == spec) return &info;
  }
  return nullptr;
}

std::vector<uint16_t> Catalog::PathsHeadedAt(
    const std::string& set_name) const {
  std::vector<uint16_t> out;
  for (const auto& [id, info] : paths_) {
    if (info.bound.set_name == set_name) out.push_back(id);
  }
  return out;
}

std::vector<uint16_t> Catalog::AllPathIds() const {
  std::vector<uint16_t> out;
  out.reserve(paths_.size());
  for (const auto& [id, info] : paths_) out.push_back(id);
  return out;
}

Status Catalog::RegisterIndex(IndexInfo info) {
  if (indexes_.count(info.name) != 0) {
    return Status::AlreadyExists("index " + info.name + " already exists");
  }
  indexes_.emplace(info.name, std::move(info));
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& name) {
  if (indexes_.erase(name) == 0) {
    return Status::NotFound("no index named " + name);
  }
  return Status::OK();
}

const IndexInfo* Catalog::FindIndexByName(const std::string& name) const {
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : &it->second;
}

const IndexInfo* Catalog::FindIndex(const std::string& set_name,
                                    const std::string& key_expr) const {
  for (const auto& [name, info] : indexes_) {
    if (info.set_name == set_name && info.key_expr == key_expr) return &info;
  }
  return nullptr;
}

std::vector<const IndexInfo*> Catalog::IndexesOnSet(
    const std::string& set_name) const {
  std::vector<const IndexInfo*> out;
  for (const auto& [name, info] : indexes_) {
    if (info.set_name == set_name) out.push_back(&info);
  }
  return out;
}

namespace {

void EncodeBoundPath(const BoundPath& path, std::string* out) {
  PutLengthPrefixed(out, path.set_name);
  PutU16(out, static_cast<uint16_t>(path.steps.size()));
  for (const PathStep& step : path.steps) {
    PutLengthPrefixed(out, step.attr_name);
    PutI32(out, step.attr_index);
    PutLengthPrefixed(out, step.source_type);
    PutLengthPrefixed(out, step.target_type);
  }
  PutLengthPrefixed(out, path.terminal_type);
  out->push_back(static_cast<char>(path.all ? 1 : 0));
  PutU16(out, static_cast<uint16_t>(path.terminal_fields.size()));
  for (int field : path.terminal_fields) PutI32(out, field);
}

Status DecodeBoundPath(ByteReader* reader, BoundPath* path) {
  *path = BoundPath();
  uint16_t steps, fields;
  std::string byte;
  if (!reader->GetLengthPrefixed(&path->set_name) ||
      !reader->GetU16(&steps)) {
    return Status::Corruption("truncated bound path");
  }
  for (uint16_t i = 0; i < steps; ++i) {
    PathStep step;
    if (!reader->GetLengthPrefixed(&step.attr_name) ||
        !reader->GetI32(&step.attr_index) ||
        !reader->GetLengthPrefixed(&step.source_type) ||
        !reader->GetLengthPrefixed(&step.target_type)) {
      return Status::Corruption("truncated path step");
    }
    path->steps.push_back(std::move(step));
  }
  if (!reader->GetLengthPrefixed(&path->terminal_type) ||
      !reader->GetRaw(1, &byte) || !reader->GetU16(&fields)) {
    return Status::Corruption("truncated bound path");
  }
  path->all = byte[0] != 0;
  for (uint16_t i = 0; i < fields; ++i) {
    int32_t field;
    if (!reader->GetI32(&field)) {
      return Status::Corruption("truncated bound path");
    }
    path->terminal_fields.push_back(field);
  }
  return Status::OK();
}

}  // namespace

void Catalog::EncodeTo(std::string* out) const {
  // Types.
  PutU16(out, static_cast<uint16_t>(types_by_name_.size()));
  for (const auto& [name, type] : types_by_name_) {
    PutLengthPrefixed(out, name);
    PutU16(out, type.type_tag());
    PutU16(out, static_cast<uint16_t>(type.attribute_count()));
    for (const AttributeDescriptor& attr : type.attributes()) {
      PutLengthPrefixed(out, attr.name);
      out->push_back(static_cast<char>(attr.type));
      PutU32(out, attr.char_length);
      PutLengthPrefixed(out, attr.ref_type);
    }
  }
  // Sets.
  PutU16(out, static_cast<uint16_t>(sets_.size()));
  for (const auto& [name, info] : sets_) {
    PutLengthPrefixed(out, name);
    PutLengthPrefixed(out, info.type_name);
    PutU16(out, info.file_id);
  }
  // Replication paths.
  PutU16(out, static_cast<uint16_t>(paths_.size()));
  for (const auto& [id, info] : paths_) {
    PutU16(out, info.id);
    PutLengthPrefixed(out, info.spec);
    EncodeBoundPath(info.bound, out);
    out->push_back(static_cast<char>(info.strategy));
    out->push_back(static_cast<char>(info.collapsed ? 1 : 0));
    PutU32(out, info.inline_threshold);
    out->push_back(static_cast<char>(info.deferred ? 1 : 0));
    out->push_back(static_cast<char>(info.cluster_links ? 1 : 0));
    PutU16(out, static_cast<uint16_t>(info.link_sequence.size()));
    for (uint8_t link : info.link_sequence) {
      out->push_back(static_cast<char>(link));
    }
    PutU16(out, info.replica_set_file);
  }
  link_registry_.EncodeTo(out);
  // Indexes.
  PutU16(out, static_cast<uint16_t>(indexes_.size()));
  for (const auto& [name, info] : indexes_) {
    PutLengthPrefixed(out, info.name);
    PutLengthPrefixed(out, info.set_name);
    PutLengthPrefixed(out, info.key_expr);
    out->push_back(static_cast<char>(info.clustered ? 1 : 0));
    PutI32(out, info.attr_index);
    PutU16(out, info.path_id);
    out->push_back(static_cast<char>(info.is_path_index ? 1 : 0));
    PutU16(out, info.file_id);
  }
  // Counters.
  PutU16(out, next_type_tag_);
  PutU16(out, next_file_id_.load(std::memory_order_relaxed));
  PutU16(out, next_path_id_);
}

Status Catalog::DecodeFrom(ByteReader* reader) {
  types_by_name_.clear();
  types_by_tag_.clear();
  sets_.clear();
  sets_by_file_.clear();
  paths_.clear();
  indexes_.clear();

  uint16_t type_count;
  if (!reader->GetU16(&type_count)) {
    return Status::Corruption("truncated catalog: types");
  }
  for (uint16_t i = 0; i < type_count; ++i) {
    std::string name;
    uint16_t tag, attr_count;
    if (!reader->GetLengthPrefixed(&name) || !reader->GetU16(&tag) ||
        !reader->GetU16(&attr_count)) {
      return Status::Corruption("truncated type");
    }
    std::vector<AttributeDescriptor> attrs;
    for (uint16_t j = 0; j < attr_count; ++j) {
      AttributeDescriptor attr;
      std::string kind;
      if (!reader->GetLengthPrefixed(&attr.name) || !reader->GetRaw(1, &kind) ||
          !reader->GetU32(&attr.char_length) ||
          !reader->GetLengthPrefixed(&attr.ref_type)) {
        return Status::Corruption("truncated attribute");
      }
      attr.type = static_cast<FieldType>(kind[0]);
      attrs.push_back(std::move(attr));
    }
    TypeDescriptor type(name, std::move(attrs));
    type.set_type_tag(tag);
    types_by_tag_[tag] = name;
    types_by_name_.emplace(name, std::move(type));
  }

  uint16_t set_count;
  if (!reader->GetU16(&set_count)) {
    return Status::Corruption("truncated catalog: sets");
  }
  for (uint16_t i = 0; i < set_count; ++i) {
    SetInfo info;
    if (!reader->GetLengthPrefixed(&info.name) ||
        !reader->GetLengthPrefixed(&info.type_name) ||
        !reader->GetU16(&info.file_id)) {
      return Status::Corruption("truncated set");
    }
    sets_by_file_[info.file_id] = info.name;
    sets_.emplace(info.name, std::move(info));
  }

  uint16_t path_count;
  if (!reader->GetU16(&path_count)) {
    return Status::Corruption("truncated catalog: paths");
  }
  for (uint16_t i = 0; i < path_count; ++i) {
    ReplicationPathInfo info;
    std::string byte;
    uint16_t link_count;
    if (!reader->GetU16(&info.id) || !reader->GetLengthPrefixed(&info.spec)) {
      return Status::Corruption("truncated path");
    }
    FIELDREP_RETURN_IF_ERROR(DecodeBoundPath(reader, &info.bound));
    if (!reader->GetRaw(1, &byte)) return Status::Corruption("truncated path");
    info.strategy = static_cast<ReplicationStrategy>(byte[0]);
    if (!reader->GetRaw(1, &byte)) return Status::Corruption("truncated path");
    info.collapsed = byte[0] != 0;
    if (!reader->GetU32(&info.inline_threshold)) {
      return Status::Corruption("truncated path");
    }
    if (!reader->GetRaw(1, &byte)) return Status::Corruption("truncated path");
    info.deferred = byte[0] != 0;
    if (!reader->GetRaw(1, &byte)) return Status::Corruption("truncated path");
    info.cluster_links = byte[0] != 0;
    if (!reader->GetU16(&link_count)) {
      return Status::Corruption("truncated path");
    }
    for (uint16_t j = 0; j < link_count; ++j) {
      if (!reader->GetRaw(1, &byte)) {
        return Status::Corruption("truncated path");
      }
      info.link_sequence.push_back(static_cast<uint8_t>(byte[0]));
    }
    if (!reader->GetU16(&info.replica_set_file)) {
      return Status::Corruption("truncated path");
    }
    paths_.emplace(info.id, std::move(info));
  }

  FIELDREP_RETURN_IF_ERROR(link_registry_.DecodeFrom(reader));

  uint16_t index_count;
  if (!reader->GetU16(&index_count)) {
    return Status::Corruption("truncated catalog: indexes");
  }
  for (uint16_t i = 0; i < index_count; ++i) {
    IndexInfo info;
    std::string byte;
    if (!reader->GetLengthPrefixed(&info.name) ||
        !reader->GetLengthPrefixed(&info.set_name) ||
        !reader->GetLengthPrefixed(&info.key_expr)) {
      return Status::Corruption("truncated index");
    }
    if (!reader->GetRaw(1, &byte)) return Status::Corruption("truncated index");
    info.clustered = byte[0] != 0;
    if (!reader->GetI32(&info.attr_index) || !reader->GetU16(&info.path_id)) {
      return Status::Corruption("truncated index");
    }
    if (!reader->GetRaw(1, &byte)) return Status::Corruption("truncated index");
    info.is_path_index = byte[0] != 0;
    if (!reader->GetU16(&info.file_id)) {
      return Status::Corruption("truncated index");
    }
    indexes_.emplace(info.name, std::move(info));
  }

  uint16_t next_file_id = 0;
  if (!reader->GetU16(&next_type_tag_) || !reader->GetU16(&next_file_id) ||
      !reader->GetU16(&next_path_id_)) {
    return Status::Corruption("truncated catalog: counters");
  }
  next_file_id_.store(next_file_id, std::memory_order_relaxed);
  return Status::OK();
}

std::string Catalog::Describe() const {
  std::string out;
  for (const auto& [name, type] : types_by_name_) {
    out += type.ToString() + "\n";
  }
  for (const auto& [name, info] : sets_) {
    out += "create " + name + ": {own ref " + info.type_name + "}\n";
  }
  for (const auto& [id, info] : paths_) {
    out += "replicate " + info.spec + "  -- " +
           ReplicationStrategyName(info.strategy) + ", link sequence " +
           info.LinkSequenceString() + (info.collapsed ? ", collapsed" : "") +
           (info.deferred ? ", deferred" : "") + "\n";
  }
  for (const auto& [name, info] : indexes_) {
    out += "build btree " + name + " on " + info.set_name + "." +
           info.key_expr + (info.clustered ? " (clustered)" : "") + "\n";
  }
  return out;
}

}  // namespace fieldrep
