#ifndef FIELDREP_CATALOG_LINK_REGISTRY_H_
#define FIELDREP_CATALOG_LINK_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/path.h"
#include "common/status.h"
#include "storage/page.h"

namespace fieldrep {

/// Replication strategies (Sections 4 and 5).
enum class ReplicationStrategy : uint8_t {
  kInPlace = 0,   ///< replicated values stored in head-set objects
  kSeparate = 1,  ///< replicated values stored in a shared S' file
};

const char* ReplicationStrategyName(ReplicationStrategy s);

/// \brief Catalog record for one link of an inverted path.
///
/// A link P_i.P_{i+1}^-1 maps objects of `target_type` back to the
/// level-(i-1) objects that reference them. Links are shared between
/// replication paths with a common prefix from the same head set
/// (Section 4.1.4); `path_ids` lists the sharers.
struct LinkInfo {
  uint8_t id = 0;
  std::string key;          ///< canonical prefix, e.g. "Emp1.dept.org"
  std::string head_set;     ///< set the paths emanate from
  uint16_t level = 0;       ///< 1-based position in the replication path
  std::string source_type;  ///< type on the referencing side
  std::string target_type;  ///< type whose objects own the link objects
  std::string attr_name;    ///< ref attribute the link inverts
  bool collapsed = false;   ///< collapsed link (Section 4.3.3): entries
                            ///< are tagged with the intermediate OID
  /// Link objects with at most this many members are eliminated and stored
  /// inline in their owner (Section 4.3.1). Fixed at link creation; 0
  /// disables inlining (always 0 for collapsed links, whose entries carry
  /// tags that the inline representation cannot hold).
  uint32_t inline_threshold = 1;
  FileId link_set_file = kInvalidFileId;  ///< file storing the link objects
  std::vector<uint16_t> path_ids;         ///< replication paths sharing it
};

/// \brief Catalog record for one replication path
/// (`replicate Emp1.dept.org.name`).
struct ReplicationPathInfo {
  uint16_t id = 0;
  std::string spec;  ///< original text, e.g. "Emp1.dept.org.name"
  BoundPath bound;
  ReplicationStrategy strategy = ReplicationStrategy::kInPlace;
  /// Collapse the inverted path to one level (Section 4.3.3; in-place,
  /// 2-level paths only).
  bool collapsed = false;
  /// Link objects with at most this many member OIDs are eliminated and
  /// inlined into their owner (Section 4.3.1). 0 disables inlining.
  uint32_t inline_threshold = 1;
  /// Deferred propagation (Section 8 future work): terminal updates queue
  /// instead of propagating immediately. In-place paths only.
  bool deferred = false;
  /// Section 4.3.2: this path's links share one link file, with link
  /// objects grouped by terminal chain.
  bool cluster_links = false;
  /// The paper's link sequence, head to terminal (Section 4.1.3). Empty for
  /// 1-level separate paths, which need no inverted path.
  std::vector<uint8_t> link_sequence;
  /// For separate replication: the S' file holding replica records.
  FileId replica_set_file = kInvalidFileId;

  std::string LinkSequenceString() const;
};

/// \brief Owns link-ID assignment and the link catalog.
///
/// Link IDs are 8-bit (Figure 10: sizeof(link-ID) = 1 byte) and reusable
/// after a path is dropped, as Section 4.2 suggests.
class LinkRegistry {
 public:
  LinkRegistry() = default;

  /// Finds or creates the link with canonical `key`. When the link already
  /// exists (shared prefix) the path is appended to its sharers; the
  /// existing link's shape must match. Collapsed links are never shared.
  Status InternLink(const std::string& key, const std::string& head_set,
                    uint16_t level, const std::string& source_type,
                    const std::string& target_type,
                    const std::string& attr_name, bool collapsed,
                    uint16_t path_id, uint8_t* link_id);

  const LinkInfo* GetLink(uint8_t id) const;
  LinkInfo* GetMutableLink(uint8_t id);

  /// Detaches `path_id` from every link; links with no remaining sharers
  /// are freed and their ids become reusable. Freed link ids are returned.
  std::vector<uint8_t> ReleasePathLinks(uint16_t path_id);

  size_t link_count() const { return links_.size(); }
  std::vector<uint8_t> AllLinkIds() const;

  /// Serialization for database checkpoints.
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(class ByteReader* reader);

 private:
  std::map<uint8_t, LinkInfo> links_;
  std::map<std::string, uint8_t> by_key_;
  uint8_t next_id_ = 1;
};

}  // namespace fieldrep

#endif  // FIELDREP_CATALOG_LINK_REGISTRY_H_
