#include "catalog/link_registry.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/strings.h"

namespace fieldrep {

const char* ReplicationStrategyName(ReplicationStrategy s) {
  switch (s) {
    case ReplicationStrategy::kInPlace:
      return "in-place";
    case ReplicationStrategy::kSeparate:
      return "separate";
  }
  return "?";
}

std::string ReplicationPathInfo::LinkSequenceString() const {
  std::string out = "(";
  for (size_t i = 0; i < link_sequence.size(); ++i) {
    if (i > 0) out += ",";
    out += StringPrintf("%u", link_sequence[i]);
  }
  out += ")";
  return out;
}

Status LinkRegistry::InternLink(const std::string& key,
                                const std::string& head_set, uint16_t level,
                                const std::string& source_type,
                                const std::string& target_type,
                                const std::string& attr_name, bool collapsed,
                                uint16_t path_id, uint8_t* link_id) {
  // Collapsed links are private to their path (Section 4.3.3: "collapsed
  // paths prohibit the sharing of some links"), so they get a per-path key.
  std::string effective_key =
      collapsed ? key + StringPrintf("~collapsed#%u", path_id) : key;
  auto it = by_key_.find(effective_key);
  if (it != by_key_.end()) {
    LinkInfo& link = links_.at(it->second);
    if (link.level != level || link.attr_name != attr_name ||
        link.source_type != source_type || link.target_type != target_type) {
      return Status::Internal("link key collision with mismatched shape: " +
                              effective_key);
    }
    if (std::find(link.path_ids.begin(), link.path_ids.end(), path_id) ==
        link.path_ids.end()) {
      link.path_ids.push_back(path_id);
    }
    *link_id = link.id;
    return Status::OK();
  }
  if (links_.size() >= 255) {
    return Status::OutOfRange("no free link ids (255 links in use)");
  }
  // Find the lowest unused id; ids are 1-based (0 means "no link").
  uint8_t id = next_id_;
  while (links_.count(id) != 0 || id == 0) {
    id = static_cast<uint8_t>(id + 1);
  }
  next_id_ = static_cast<uint8_t>(id + 1);
  LinkInfo link;
  link.id = id;
  link.key = effective_key;
  link.head_set = head_set;
  link.level = level;
  link.source_type = source_type;
  link.target_type = target_type;
  link.attr_name = attr_name;
  link.collapsed = collapsed;
  link.path_ids.push_back(path_id);
  links_.emplace(id, std::move(link));
  by_key_.emplace(effective_key, id);
  *link_id = id;
  return Status::OK();
}

const LinkInfo* LinkRegistry::GetLink(uint8_t id) const {
  auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

LinkInfo* LinkRegistry::GetMutableLink(uint8_t id) {
  auto it = links_.find(id);
  return it == links_.end() ? nullptr : &it->second;
}

std::vector<uint8_t> LinkRegistry::ReleasePathLinks(uint16_t path_id) {
  std::vector<uint8_t> freed;
  for (auto it = links_.begin(); it != links_.end();) {
    LinkInfo& link = it->second;
    auto pos = std::find(link.path_ids.begin(), link.path_ids.end(), path_id);
    if (pos != link.path_ids.end()) link.path_ids.erase(pos);
    if (link.path_ids.empty()) {
      freed.push_back(link.id);
      by_key_.erase(link.key);
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
  return freed;
}

std::vector<uint8_t> LinkRegistry::AllLinkIds() const {
  std::vector<uint8_t> out;
  out.reserve(links_.size());
  for (const auto& [id, link] : links_) out.push_back(id);
  return out;
}

void LinkRegistry::EncodeTo(std::string* out) const {
  PutU16(out, static_cast<uint16_t>(links_.size()));
  for (const auto& [id, link] : links_) {
    out->push_back(static_cast<char>(link.id));
    PutLengthPrefixed(out, link.key);
    PutLengthPrefixed(out, link.head_set);
    PutU16(out, link.level);
    PutLengthPrefixed(out, link.source_type);
    PutLengthPrefixed(out, link.target_type);
    PutLengthPrefixed(out, link.attr_name);
    out->push_back(static_cast<char>(link.collapsed ? 1 : 0));
    PutU32(out, link.inline_threshold);
    PutU16(out, link.link_set_file);
    PutU16(out, static_cast<uint16_t>(link.path_ids.size()));
    for (uint16_t path_id : link.path_ids) PutU16(out, path_id);
  }
  out->push_back(static_cast<char>(next_id_));
}

Status LinkRegistry::DecodeFrom(ByteReader* reader) {
  links_.clear();
  by_key_.clear();
  uint16_t count;
  if (!reader->GetU16(&count)) {
    return Status::Corruption("truncated link registry");
  }
  for (uint16_t i = 0; i < count; ++i) {
    LinkInfo link;
    std::string byte;
    uint16_t path_count;
    if (!reader->GetRaw(1, &byte)) {
      return Status::Corruption("truncated link record");
    }
    link.id = static_cast<uint8_t>(byte[0]);
    if (!reader->GetLengthPrefixed(&link.key) ||
        !reader->GetLengthPrefixed(&link.head_set) ||
        !reader->GetU16(&link.level) ||
        !reader->GetLengthPrefixed(&link.source_type) ||
        !reader->GetLengthPrefixed(&link.target_type) ||
        !reader->GetLengthPrefixed(&link.attr_name)) {
      return Status::Corruption("truncated link record");
    }
    if (!reader->GetRaw(1, &byte)) {
      return Status::Corruption("truncated link record");
    }
    link.collapsed = byte[0] != 0;
    if (!reader->GetU32(&link.inline_threshold)) {
      return Status::Corruption("truncated link record");
    }
    if (!reader->GetU16(&link.link_set_file) ||
        !reader->GetU16(&path_count)) {
      return Status::Corruption("truncated link record");
    }
    for (uint16_t j = 0; j < path_count; ++j) {
      uint16_t path_id;
      if (!reader->GetU16(&path_id)) {
        return Status::Corruption("truncated link record");
      }
      link.path_ids.push_back(path_id);
    }
    by_key_[link.key] = link.id;
    links_.emplace(link.id, std::move(link));
  }
  std::string byte;
  if (!reader->GetRaw(1, &byte)) {
    return Status::Corruption("truncated link registry");
  }
  next_id_ = static_cast<uint8_t>(byte[0]);
  return Status::OK();
}

}  // namespace fieldrep
