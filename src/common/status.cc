#include "common/status.h"

namespace fieldrep {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace fieldrep
