#ifndef FIELDREP_COMMON_STRINGS_H_
#define FIELDREP_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fieldrep {

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace fieldrep

#endif  // FIELDREP_COMMON_STRINGS_H_
