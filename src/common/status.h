#ifndef FIELDREP_COMMON_STATUS_H_
#define FIELDREP_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace fieldrep {

/// \brief Error categories used throughout the library.
///
/// The library reports failures through Status / Result<T> return values
/// rather than exceptions, so every fallible public entry point returns one
/// of these codes together with a human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kIOError,
  kOutOfRange,
  kNotSupported,
  kFailedPrecondition,
  kInternal,
  /// The service cannot take the request right now (admission control,
  /// backpressure); retrying later may succeed. Used by the network
  /// server's busy replies.
  kUnavailable,
  /// The transaction was killed by concurrency control (wait-or-die lock
  /// conflict); the work itself was valid and retrying the whole
  /// transaction should succeed.
  kAborted,
};

/// \brief Returns a stable, human-readable name for a status code
/// (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// \brief Value-type result of a fallible operation.
///
/// A Status is cheap to copy when OK (no allocation) and carries a message
/// string otherwise. Typical use:
///
/// \code
///   Status s = file.Read(oid, &buf);
///   if (!s.ok()) return s;
/// \endcode
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Analogous to absl::StatusOr / arrow::Result. Dereferencing a non-OK
/// Result is a programming error and aborts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  Result(Status status) : state_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(state_);
  }

  T& value() & { return std::get<T>(state_); }
  const T& value() const& { return std::get<T>(state_); }
  T&& value() && { return std::get<T>(std::move(state_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Moves the value out, or returns `fallback` if this holds an error.
  T ValueOr(T fallback) && {
    if (ok()) return std::get<T>(std::move(state_));
    return fallback;
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace fieldrep

/// Propagates a non-OK Status from the current function.
#define FIELDREP_RETURN_IF_ERROR(expr)             \
  do {                                             \
    ::fieldrep::Status _frs = (expr);              \
    if (!_frs.ok()) return _frs;                   \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors; on success binds
/// the value to `lhs`.
#define FIELDREP_ASSIGN_OR_RETURN(lhs, rexpr)      \
  FIELDREP_ASSIGN_OR_RETURN_IMPL_(                 \
      FIELDREP_CONCAT_(_frr, __LINE__), lhs, rexpr)

#define FIELDREP_CONCAT_INNER_(a, b) a##b
#define FIELDREP_CONCAT_(a, b) FIELDREP_CONCAT_INNER_(a, b)
#define FIELDREP_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                    \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

#endif  // FIELDREP_COMMON_STATUS_H_
