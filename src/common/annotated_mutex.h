#ifndef FIELDREP_COMMON_ANNOTATED_MUTEX_H_
#define FIELDREP_COMMON_ANNOTATED_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"

/// \file
/// Engine-wide lock vocabulary (DESIGN.md §13). Every mutex in the engine
/// is one of the wrappers below, which layer two checkers over the std
/// primitives:
///
///   1. Clang thread-safety annotations (compile time). Building with
///      clang and -Wthread-safety -Wthread-safety-beta turns unguarded
///      accesses to GUARDED_BY fields and REQUIRES violations into errors
///      (the CI `thread-safety` lane does, as -Werror). Under GCC the
///      macros expand to nothing.
///   2. The runtime lock-rank checker (common/lock_rank.h). Each wrapper
///      is constructed with a LockRank and a name; debug/sanitizer builds
///      abort with both lock names on any acquisition that inverts the
///      documented order. Release builds compile the checks out.
///
/// Raw std::mutex / std::shared_mutex / std::recursive_mutex declarations
/// outside this header are rejected by scripts/check_annotations.sh.

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (canonical names from the Clang
// "Thread Safety Analysis" documentation; no-ops on other compilers).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define FIELDREP_TSA(x) __attribute__((x))
#else
#define FIELDREP_TSA(x)
#endif

#define CAPABILITY(x) FIELDREP_TSA(capability(x))
#define SCOPED_CAPABILITY FIELDREP_TSA(scoped_lockable)
#define GUARDED_BY(x) FIELDREP_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) FIELDREP_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) FIELDREP_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) FIELDREP_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) FIELDREP_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) FIELDREP_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) FIELDREP_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) FIELDREP_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) FIELDREP_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) FIELDREP_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) FIELDREP_TSA(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) FIELDREP_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  FIELDREP_TSA(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) FIELDREP_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) FIELDREP_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) FIELDREP_TSA(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) FIELDREP_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS FIELDREP_TSA(no_thread_safety_analysis)

namespace fieldrep {

/// Condition variable usable with the annotated lock types below (their
/// guards are BasicLockable, so waits route unlock/relock through the rank
/// checker and keep the per-thread held stack truthful across the wait).
using CondVar = std::condition_variable_any;

// ---------------------------------------------------------------------------
// Mutex wrappers
// ---------------------------------------------------------------------------

/// std::mutex with a rank and a name. Satisfies Lockable.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/false,
                         /*blocking=*/true);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/false,
                         /*blocking=*/false);
    return true;
  }
  void unlock() RELEASE() {
    // Pop the rank entry first: the instant mu_.unlock() returns, a
    // waiter may acquire and destroy this mutex (RunBatch's stack-owned
    // batch state does), so `this` must not be touched afterwards.
    lock_rank::OnRelease(this, name_);
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// std::recursive_mutex with a rank and a name. Same-instance
/// re-acquisition bypasses the rank check (the thread already owns it, so
/// no new blocking edge is created).
class CAPABILITY("recursive_mutex") RecursiveMutex {
 public:
  RecursiveMutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/true,
                         /*blocking=*/true);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/true,
                         /*blocking=*/false);
    return true;
  }
  void unlock() RELEASE() {
    lock_rank::OnRelease(this, name_);  // before unlock; see Mutex
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::recursive_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

/// std::shared_mutex with a rank and a name. Shared acquisitions are
/// rank-checked like exclusive ones (a reader blocking behind a writer
/// deadlocks all the same).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/false,
                         /*blocking=*/true);
    mu_.lock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/false,
                         /*blocking=*/false);
    return true;
  }
  void unlock() RELEASE() {
    lock_rank::OnRelease(this, name_);  // before unlock; see Mutex
    mu_.unlock();
  }

  void lock_shared() ACQUIRE_SHARED() {
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/false,
                         /*blocking=*/true);
    mu_.lock_shared();
  }
  bool try_lock_shared() TRY_ACQUIRE_SHARED(true) {
    if (!mu_.try_lock_shared()) return false;
    lock_rank::OnAcquire(this, rank_, name_, /*reentrant=*/false,
                         /*blocking=*/false);
    return true;
  }
  void unlock_shared() RELEASE_SHARED() {
    lock_rank::OnRelease(this, name_);  // before unlock; see Mutex
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

// ---------------------------------------------------------------------------
// Scoped guards
// ---------------------------------------------------------------------------

/// RAII lock of a Mutex (std::lock_guard shape).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII lock of a RecursiveMutex.
class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~RecursiveMutexLock() RELEASE() { mu_.unlock(); }
  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex& mu_;
};

/// RAII shared (reader) lock of a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock of a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Relockable scoped lock of a Mutex (std::unique_lock shape): supports
/// deferred construction, manual unlock/relock, and CondVar waits (it is
/// BasicLockable). Not movable — it exists for scoped wait loops, not for
/// ownership transfer.
class SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) {
    mu_->lock();
    owned_ = true;
  }
  UniqueMutexLock(Mutex& mu, std::defer_lock_t) EXCLUDES(mu) : mu_(&mu) {}
  ~UniqueMutexLock() RELEASE() {
    if (owned_) mu_->unlock();
  }
  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void lock() ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }
  void unlock() RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  bool owns_lock() const { return owned_; }

 private:
  Mutex* mu_;
  bool owned_ = false;
};

/// Takes a RecursiveMutex only when one is present — the query layer's
/// write gate is a Database-owned lock that standalone executor tests run
/// without. A conditional acquisition cannot be expressed to the static
/// analysis, so this guard is deliberately unannotated; the runtime rank
/// checker still sees every underlying acquisition. LockNow()/released
/// state support the executor's "defer the gate until spooling starts"
/// pattern.
class OptionalRecursiveLock {
 public:
  OptionalRecursiveLock() = default;
  explicit OptionalRecursiveLock(RecursiveMutex* mu)
      NO_THREAD_SAFETY_ANALYSIS : mu_(mu) {
    if (mu_ != nullptr) mu_->lock();
  }
  ~OptionalRecursiveLock() NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) mu_->unlock();
  }
  OptionalRecursiveLock(const OptionalRecursiveLock&) = delete;
  OptionalRecursiveLock& operator=(const OptionalRecursiveLock&) = delete;

  /// Acquires `mu` now (nullptr is a no-op) and releases it on
  /// destruction. Must be empty (default-constructed or nullptr).
  void LockNow(RecursiveMutex* mu) NO_THREAD_SAFETY_ANALYSIS {
    if (mu == nullptr || mu_ != nullptr) return;
    mu_ = mu;
    mu_->lock();
  }
  bool owns_lock() const { return mu_ != nullptr; }

 private:
  RecursiveMutex* mu_ = nullptr;
};

}  // namespace fieldrep

#endif  // FIELDREP_COMMON_ANNOTATED_MUTEX_H_
