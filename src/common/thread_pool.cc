#include "common/thread_pool.h"

#include <chrono>

namespace fieldrep {

namespace {
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      UniqueMutexLock lock(mu_);
      work_cv_.wait(lock, [this]() REQUIRES(mu_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
  }
}

void ThreadPool::RunTask(std::function<void()>& task) {
  const uint64_t start_ns = NowNs();
  task();
  task_ns_.Observe(NowNs() - start_ns);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadPool::RunBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  batches_run_.fetch_add(1, std::memory_order_relaxed);
  if (tasks.size() == 1) {
    // Nothing to fan out; skip the queue entirely.
    RunTask(tasks[0]);
    return;
  }
  struct BatchState {
    /// kLeaf: task wrappers take it with no other lock held, and the
    /// caller's completion wait holds nothing else either.
    Mutex mu{LockRank::kLeaf, "thread_pool.batch.mu"};
    CondVar done_cv;
    size_t remaining GUARDED_BY(mu);
  };
  BatchState state;
  {
    MutexLock init_lock(state.mu);
    state.remaining = tasks.size();
  }
  {
    MutexLock lock(mu_);
    for (auto& task : tasks) {
      queue_.emplace_back([&state, fn = std::move(task)] {
        fn();
        MutexLock done_lock(state.mu);
        if (--state.remaining == 0) state.done_cv.notify_one();
      });
    }
  }
  // One wakeup per task the workers could take beyond the one the caller
  // runs itself; notify_all would stampede the whole pool for small
  // batches.
  for (size_t i = 1; i < tasks.size() && i <= threads_.size(); ++i) {
    work_cv_.notify_one();
  }
  // The caller is a full batch participant: it drains queued tasks
  // alongside the workers instead of sleeping, so a batch of N tasks
  // needs only N-1 free cores to run N-wide — and on a single-core
  // machine the fan-out degrades to nearly free serial execution instead
  // of a context-switch ping-pong. The queue is shared, so the caller may
  // execute a concurrent batch's task; that only speeds the other batch
  // up (its wrapper decrements its own BatchState).
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (queue_.empty()) break;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    RunTask(task);
  }
  UniqueMutexLock lock(state.mu);
  state.done_cv.wait(lock,
                     [&state]() REQUIRES(state.mu) { return state.remaining == 0; });
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::CollectMetrics(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  add("fieldrep_threadpool_tasks_total", "Tasks executed by the pool.",
      MetricKind::kCounter, static_cast<double>(tasks_run()));
  add("fieldrep_threadpool_batches_total", "Batches submitted via RunBatch.",
      MetricKind::kCounter, static_cast<double>(batches_run()));
  add("fieldrep_threadpool_threads", "Worker threads in the pool.",
      MetricKind::kGauge, static_cast<double>(threads_.size()));
  add("fieldrep_threadpool_queue_depth", "Tasks currently queued.",
      MetricKind::kGauge, static_cast<double>(queue_depth()));
  MetricSample lat;
  lat.name = "fieldrep_threadpool_task_ns";
  lat.help = "Per-task execution latency, nanoseconds.";
  lat.kind = MetricKind::kHistogram;
  lat.histogram = task_ns_.TakeSnapshot();
  out->push_back(std::move(lat));
}

}  // namespace fieldrep
