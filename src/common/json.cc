#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/strings.h"

namespace fieldrep {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Number(uint64_t u) {
  return Number(static_cast<double>(u));
}

JsonValue JsonValue::Number(int64_t i) {
  return Number(static_cast<double>(i));
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

JsonValue& JsonValue::Append(JsonValue v) {
  array_.push_back(std::move(v));
  return array_.back();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

void JsonEscape(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringPrintf("\\u%04x", c);
        } else {
          *out += c;
        }
    }
  }
}

namespace {

void AppendNumber(double d, std::string* out) {
  // Integral values (the common case: counters) print without a fraction,
  // so a uint64 round-trips textually up to 2^53.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    *out += StringPrintf("%lld", static_cast<long long>(d));
    return;
  }
  if (!std::isfinite(d)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    *out += "null";
    return;
  }
  *out += StringPrintf("%.17g", d);
}

void Indent(std::string* out, int indent, int depth) {
  if (indent <= 0) return;
  *out += '\n';
  out->append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void JsonValue::SerializeTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      *out += "null";
      return;
    case Kind::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      AppendNumber(number_, out);
      return;
    case Kind::kString:
      *out += '"';
      JsonEscape(string_, out);
      *out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        return;
      }
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) *out += ',';
        Indent(out, indent, depth + 1);
        array_[i].SerializeTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      *out += ']';
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        *out += "{}";
        return;
      }
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) *out += ',';
        Indent(out, indent, depth + 1);
        *out += '"';
        JsonEscape(members_[i].first, out);
        *out += "\":";
        if (indent > 0) *out += ' ';
        members_[i].second.SerializeTo(out, indent, depth + 1);
      }
      Indent(out, indent, depth);
      *out += '}';
      return;
    }
  }
}

std::string JsonValue::Serialize(int indent) const {
  std::string out;
  SerializeTo(&out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

/// Recursive-descent parser over a raw character range.
class JsonParser {
 public:
  JsonParser(const char* p, const char* end) : p_(p), end_(end) {}

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Status::InvalidArgument("json: nesting too deep");
    }
    SkipWs();
    if (p_ == end_) return Status::InvalidArgument("json: unexpected end");
    switch (*p_) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        FIELDREP_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::OK();
      }
      case 't':
        FIELDREP_RETURN_IF_ERROR(Expect("true"));
        *out = JsonValue::Bool(true);
        return Status::OK();
      case 'f':
        FIELDREP_RETURN_IF_ERROR(Expect("false"));
        *out = JsonValue::Bool(false);
        return Status::OK();
      case 'n':
        FIELDREP_RETURN_IF_ERROR(Expect("null"));
        *out = JsonValue::Null();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  void SkipWs() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool AtEnd() {
    SkipWs();
    return p_ == end_;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Expect(const char* literal) {
    size_t n = std::strlen(literal);
    if (static_cast<size_t>(end_ - p_) < n ||
        std::memcmp(p_, literal, n) != 0) {
      return Status::InvalidArgument(std::string("json: expected ") + literal);
    }
    p_ += n;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    ++p_;  // opening quote
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) break;
        switch (*p_) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (end_ - p_ < 5) {
              return Status::InvalidArgument("json: truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char c = p_[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return Status::InvalidArgument("json: bad \\u escape");
            }
            p_ += 4;
            if (code < 0x80) {
              *out += static_cast<char>(code);
            } else if (code < 0x800) {
              *out += static_cast<char>(0xC0 | (code >> 6));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (code >> 12));
              *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Status::InvalidArgument("json: bad escape");
        }
        ++p_;
      } else {
        *out += *p_++;
      }
    }
    if (p_ == end_) return Status::InvalidArgument("json: unterminated string");
    ++p_;  // closing quote
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ &&
           ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return Status::InvalidArgument("json: bad value");
    std::string text(start, p_);
    char* parse_end = nullptr;
    double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end == nullptr || *parse_end != '\0') {
      return Status::InvalidArgument("json: bad number: " + text);
    }
    *out = JsonValue::Number(d);
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++p_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (p_ != end_ && *p_ == ']') {
      ++p_;
      return Status::OK();
    }
    for (;;) {
      JsonValue element;
      FIELDREP_RETURN_IF_ERROR(ParseValue(&element, depth + 1));
      out->Append(std::move(element));
      SkipWs();
      if (p_ == end_) return Status::InvalidArgument("json: unterminated array");
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return Status::OK();
      }
      return Status::InvalidArgument("json: expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++p_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (p_ != end_ && *p_ == '}') {
      ++p_;
      return Status::OK();
    }
    for (;;) {
      SkipWs();
      if (p_ == end_ || *p_ != '"') {
        return Status::InvalidArgument("json: expected member name");
      }
      std::string key;
      FIELDREP_RETURN_IF_ERROR(ParseString(&key));
      SkipWs();
      if (p_ == end_ || *p_ != ':') {
        return Status::InvalidArgument("json: expected ':'");
      }
      ++p_;
      JsonValue value;
      FIELDREP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->Set(key, std::move(value));
      SkipWs();
      if (p_ == end_) {
        return Status::InvalidArgument("json: unterminated object");
      }
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return Status::OK();
      }
      return Status::InvalidArgument("json: expected ',' or '}'");
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

Status JsonValue::Parse(const std::string& text, JsonValue* out) {
  JsonParser parser(text.data(), text.data() + text.size());
  FIELDREP_RETURN_IF_ERROR(parser.ParseValue(out, 0));
  if (!parser.AtEnd()) {
    return Status::InvalidArgument("json: trailing characters after value");
  }
  return Status::OK();
}

}  // namespace fieldrep
