#include "common/lock_rank.h"

#if defined(FIELDREP_LOCK_RANK_CHECKS)

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace fieldrep {
namespace lock_rank {
namespace {

struct HeldLock {
  const void* lock;
  LockRank rank;
  const char* name;
};

std::vector<HeldLock>& Held() {
  // Function-local so first use on a thread constructs it; the engine never
  // holds a lock across thread exit, so destruction order is a non-issue.
  static thread_local std::vector<HeldLock> held;
  return held;
}

[[noreturn]] void Die(const char* what, const HeldLock& held,
                      const void* lock, LockRank rank, const char* name) {
  std::fprintf(stderr,
               "[fieldrep] lock-rank violation: %s: acquiring \"%s\" "
               "(rank %u, %p) while holding \"%s\" (rank %u, %p); locks must "
               "be taken in ascending rank order (DESIGN.md #13)\n",
               what, name, static_cast<unsigned>(rank), lock, held.name,
               static_cast<unsigned>(held.rank), held.lock);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const void* lock, LockRank rank, const char* name,
               bool reentrant, bool blocking) {
  std::vector<HeldLock>& held = Held();
  for (const HeldLock& h : held) {
    if (h.lock == lock) {
      if (reentrant) {
        held.push_back({lock, rank, name});
        return;
      }
      Die("re-acquiring a non-recursive lock this thread already holds", h,
          lock, rank, name);
    }
  }
  if (blocking) {
    for (const HeldLock& h : held) {
      bool ascending = static_cast<uint16_t>(rank) >
                       static_cast<uint16_t>(h.rank);
      bool same_rank_ok = rank == h.rank && LockRankAllowsSameRank(rank);
      if (!ascending && !same_rank_ok) {
        Die("rank order inverted", h, lock, rank, name);
      }
    }
  }
  held.push_back({lock, rank, name});
}

void OnRelease(const void* lock, const char* name) {
  std::vector<HeldLock>& held = Held();
  for (size_t i = held.size(); i > 0; --i) {
    if (held[i - 1].lock == lock) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  std::fprintf(stderr,
               "[fieldrep] lock-rank violation: releasing \"%s\" (%p) that "
               "this thread does not hold\n",
               name, lock);
  std::fflush(stderr);
  std::abort();
}

size_t HeldCount() { return Held().size(); }

}  // namespace lock_rank
}  // namespace fieldrep

#endif  // FIELDREP_LOCK_RANK_CHECKS
