#ifndef FIELDREP_COMMON_RANDOM_H_
#define FIELDREP_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fieldrep {

/// \brief Deterministic xorshift128+ pseudo-random generator.
///
/// All randomized components of the library (workload generators, property
/// tests, unclustered key shuffles) use this generator so that every run is
/// reproducible from a seed. Not cryptographically secure.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// A random permutation of [0, n).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace fieldrep

#endif  // FIELDREP_COMMON_RANDOM_H_
