#ifndef FIELDREP_COMMON_BYTES_H_
#define FIELDREP_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace fieldrep {

/// \file
/// Little-endian fixed-width codecs used by every on-page structure in the
/// library (object headers, slotted-page directories, B+ tree nodes, link
/// objects). All functions assume the caller has validated bounds.

inline void EncodeU16(uint8_t* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeU32(uint8_t* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, 8); }
inline void EncodeI32(uint8_t* dst, int32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeI64(uint8_t* dst, int64_t v) { std::memcpy(dst, &v, 8); }
inline void EncodeF64(uint8_t* dst, double v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeU16(const uint8_t* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeU32(const uint8_t* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}
inline int32_t DecodeI32(const uint8_t* src) {
  int32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline int64_t DecodeI64(const uint8_t* src) {
  int64_t v;
  std::memcpy(&v, src, 8);
  return v;
}
inline double DecodeF64(const uint8_t* src) {
  double v;
  std::memcpy(&v, src, 8);
  return v;
}

/// Appends the fixed-width encoding of `v` to `out`.
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI32(std::string* out, int32_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
/// Appends a u32 length prefix followed by the bytes of `s`.
void PutLengthPrefixed(std::string* out, const std::string& s);

/// CRC-32 (the standard reflected 0xEDB88320 polynomial) of `size` bytes.
/// Used by the write-ahead log to frame records and by the storage layer
/// for per-page checksums.
uint32_t Crc32(const void* data, size_t size);

/// \brief Sequential reader over an encoded byte buffer.
///
/// Get* methods return false (and leave the output untouched) when the
/// buffer is exhausted, which callers surface as Status::Corruption.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::string& s)
      : data_(reinterpret_cast<const uint8_t*>(s.data())), size_(s.size()) {}

  bool GetU16(uint16_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI32(int32_t* v);
  bool GetI64(int64_t* v);
  bool GetF64(double* v);
  bool GetLengthPrefixed(std::string* s);
  /// Reads exactly `n` raw bytes into `s`.
  bool GetRaw(size_t n, std::string* s);
  /// Skips `n` bytes.
  bool Skip(size_t n);

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace fieldrep

#endif  // FIELDREP_COMMON_BYTES_H_
