#ifndef FIELDREP_COMMON_THREAD_POOL_H_
#define FIELDREP_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "telemetry/metrics.h"

namespace fieldrep {

/// \brief A fixed-size pool of worker threads with a blocking batch
/// primitive.
///
/// The query executor's unit of parallelism is a *stage*: it splits a
/// sorted OID vector into page-aligned ranges, runs one task per range,
/// and needs every range finished before the merge step. RunBatch models
/// exactly that — submit all tasks, block until the last one completes —
/// so the pool needs no futures, no task handles, and no shutdown
/// coordination beyond the destructor.
///
/// Tasks must not call RunBatch themselves (a worker waiting on a nested
/// batch could deadlock the pool); the executor only ever submits from
/// the query thread. Multiple query threads may share one pool: batches
/// interleave at task granularity.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues every task and blocks until all of them have run. The
  /// calling thread participates: it drains queued tasks alongside the
  /// workers before waiting, so an N-task batch reaches N-wide
  /// parallelism with only N-1 free workers and degrades to plain serial
  /// execution on a single core. Tasks must not throw; they report
  /// failure through captured state (the executor gives each task a
  /// Status slot).
  void RunBatch(std::vector<std::function<void()>> tasks);

  /// Enqueues one fire-and-forget task. Unlike RunBatch the caller does
  /// not wait (the network server's dispatch primitive); the destructor
  /// still drains every queued task before joining, so a Submit issued
  /// before shutdown always runs.
  void Submit(std::function<void()> task);

  /// Tasks executed so far (workers + caller participation).
  uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  /// Batches submitted through RunBatch (including single-task ones).
  uint64_t batches_run() const {
    return batches_run_.load(std::memory_order_relaxed);
  }
  /// Tasks currently queued (sampled under the pool mutex).
  size_t queue_depth() const {
    MutexLock lock(mu_);
    return queue_.size();
  }

  /// Appends this pool's metric samples (task/batch counters, queue-depth
  /// and size gauges, task-latency histogram) to `out`.
  void CollectMetrics(std::vector<MetricSample>* out) const;

 private:
  void WorkerLoop();
  /// Runs one task, timing it into task_ns_ and counting it.
  void RunTask(std::function<void()>& task);

  /// kThreadPool ranks above the engine locks: RunBatch/Submit callers
  /// may hold the writer mutex or server lock while enqueuing, and tasks
  /// take pool/WAL locks only after mu_ is released.
  mutable Mutex mu_{LockRank::kThreadPool, "thread_pool.mu"};
  CondVar work_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;

  /// Always-on telemetry (relaxed atomics; tasks are page-range scans,
  /// so two clock reads per task are noise).
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> batches_run_{0};
  Histogram task_ns_{Histogram::LatencyBoundsNs()};
};

}  // namespace fieldrep

#endif  // FIELDREP_COMMON_THREAD_POOL_H_
