#ifndef FIELDREP_COMMON_LOCK_RANK_H_
#define FIELDREP_COMMON_LOCK_RANK_H_

#include <cstddef>
#include <cstdint>

namespace fieldrep {

/// \brief Deadlock freedom by construction: every lock in the engine
/// carries a rank, and a thread may only acquire a lock whose rank is
/// strictly greater than every rank it already holds (DESIGN.md §13).
///
/// Ranks are spaced so future locks can slot between existing ones. The
/// ordering is derived from the real nesting observed in the engine; the
/// key chains with their evidence:
///
///   server.mu -> threadpool.mu         EnqueueFrame submits work under mu_.
///   metrics.mu -> {wal.log_mu,         MetricsRegistry::Collect invokes
///     pool.shard.mu, profiler.mu}      collectors while holding its lock.
///   db.setlock -> db.lock_table.mu     a transaction holding set locks
///                                      acquires further ones through the
///                                      table's internal mutex.
///   db.setlock -> wal.commit_mu        strict 2PL: locks are held across
///   -> db.committed_mu -> db.maps_mu   commit, whose precommit hook
///                                      publishes committed metadata and
///                                      walks the set maps.
///   frame.latch -> record.chain_mu     RecordFile::AppendPage caches chain
///                                      links while page guards are live.
///   frame.latch -> pool.victim         documented pool order (DESIGN.md
///   -> wal.log_mu -> pool.shard.mu     §10): an evicting thread never takes
///   -> wal.state_mu                    a latch; fetch paths never hold a
///                                      shard lock while latching.
///   wal.group_mu -> wal.log_mu         WaitDurable reads durable_lsn() while
///                                      deciding whether to lead a sync.
///   pool.victim -> wal.group_mu        write-back honours BeforePageFlush
///                                      (flush ordering) under victim.
///   pool.victim -> device.mu           WriteBackFrame writes to the device.
///   frame.latch -> repl.pending_mu     deferred propagation queues entries
///                                      while mutation page guards are live.
enum class LockRank : uint16_t {
  kServer = 100,           ///< net::Server::mu_ (sessions, parking, admission)
  kMetricsRegistry = 150,  ///< telemetry::MetricsRegistry::mu_
  kSetLock = 180,          ///< logical per-set 2PL locks (same-rank ok; the
                           ///< LockTable's ascending-id wait policy keeps the
                           ///< same-rank set acyclic)
  kLockTable = 190,        ///< LockTable::mu_ (lock-table internals)
  kWalCommit = 250,        ///< WalManager::commit_mu_ (one commit at a time)
  kCommittedState = 270,   ///< Database::committed_mu_ (checkpoint metadata)
  kExecutorOutput = 280,   ///< Executor::output_mu_ (output-file spooling)
  kDatabaseMaps = 300,     ///< Database::maps_mu_ (set/aux-file maps)
  kFrameLatch = 500,       ///< BufferPool per-frame latches (same-rank ok)
  kRecordChain = 550,      ///< RecordFile::chain_mu_ (page-chain cache)
  kPoolVictim = 600,       ///< BufferPool::victim_mutex_
  kWalGroup = 650,         ///< WalManager::group_mu_ (group-commit batches)
  kWalLog = 700,           ///< WalManager::log_mu_ (log writer + stats)
  kPoolShard = 800,        ///< BufferPool page-table shard mutexes
  kWalState = 900,         ///< WalManager::state_mu_ (txn dirty-page sets)
  kThreadPool = 1000,      ///< ThreadPool::mu_ (task queue)
  kSessionWrite = 1100,    ///< net::Server per-session response write lock
  kDevice = 1200,          ///< MemoryDevice::mu_ (page vector growth)
  kProfiler = 1300,        ///< WorkloadProfiler::mu_
  kReplicationPending = 1400,  ///< ReplicationManager::pending_mu_
  kLeaf = 1500,            ///< strictly-leaf locks (ThreadPool batch state)
};

/// True for rank classes whose members may be held together at the same
/// rank: per-frame latches (elevator write-back and multi-page appends
/// legitimately hold several frames at once; each frame's pin protocol
/// makes the set acyclic) and the logical per-set transaction locks (a
/// write transaction holds its whole replication closure; the LockTable
/// only ever *waits* for ids above everything held, so the same-rank set
/// cannot close a cycle).
constexpr bool LockRankAllowsSameRank(LockRank rank) {
  return rank == LockRank::kFrameLatch || rank == LockRank::kSetLock;
}

/// Whether the runtime checker is compiled in. Defined by CMake for every
/// build type except Release, so tier-1 (RelWithDebInfo) and the sanitizer
/// lanes enforce ranks while release binaries pay nothing.
#if defined(FIELDREP_LOCK_RANK_CHECKS)
inline constexpr bool kLockRankChecksEnabled = true;
#else
inline constexpr bool kLockRankChecksEnabled = false;
#endif

namespace lock_rank {

#if defined(FIELDREP_LOCK_RANK_CHECKS)

/// Records an acquisition of `lock` on this thread's held stack, aborting
/// (with both lock names) if it would invert the rank order.
///   - `reentrant`: same-instance re-acquisition is legal (recursive mutex).
///   - `blocking`:  false for try_lock-style acquisitions, which cannot
///     deadlock and are therefore recorded but not order-checked.
void OnAcquire(const void* lock, LockRank rank, const char* name,
               bool reentrant, bool blocking);

/// Pops the most recent acquisition of `lock`; aborts if it is not held
/// (an unlock on a thread that never locked is a bug by itself).
void OnRelease(const void* lock, const char* name);

/// Number of lock acquisitions currently recorded for this thread
/// (recursive acquisitions count once per level). Test hook.
size_t HeldCount();

#else

inline void OnAcquire(const void*, LockRank, const char*, bool, bool) {}
inline void OnRelease(const void*, const char*) {}
inline size_t HeldCount() { return 0; }

#endif  // FIELDREP_LOCK_RANK_CHECKS

}  // namespace lock_rank
}  // namespace fieldrep

#endif  // FIELDREP_COMMON_LOCK_RANK_H_
