#include "common/random.h"

namespace fieldrep {

namespace {
// SplitMix64, used to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  s0_ = SplitMix64(&sm);
  s1_ = SplitMix64(&sm);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be nonzero
}

uint64_t Random::NextU64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<uint32_t> Random::Permutation(uint32_t n) {
  std::vector<uint32_t> v(n);
  for (uint32_t i = 0; i < n; ++i) v[i] = i;
  Shuffle(&v);
  return v;
}

}  // namespace fieldrep
