#include "common/bytes.h"

#include <array>

namespace fieldrep {

namespace {
template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

// Slicing-by-8 CRC-32: eight derived tables let the loop consume 8 bytes
// per step with independent lookups instead of a 1-byte loop-carried
// dependency chain. Identical polynomial and results as the classic
// byte-at-a-time form, ~8x the throughput — per-page checksum stamping and
// verification sit on the buffer pool's flush and prefetch paths, where
// the byte-wise version costs ~10us per 4 KiB page.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}
}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables =
      BuildCrcTables();
  const auto& t = kTables;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  // The 8-byte fast path assumes little-endian loads, like the fixed-width
  // encoders above (the on-disk format is little-endian throughout).
  while (size >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    bytes += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU16(std::string* out, uint16_t v) { PutFixed(out, v); }
void PutU32(std::string* out, uint32_t v) { PutFixed(out, v); }
void PutU64(std::string* out, uint64_t v) { PutFixed(out, v); }
void PutI32(std::string* out, int32_t v) { PutFixed(out, v); }
void PutI64(std::string* out, int64_t v) { PutFixed(out, v); }
void PutF64(std::string* out, double v) { PutFixed(out, v); }

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ByteReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = DecodeU16(data_ + pos_);
  pos_ += 2;
  return true;
}

bool ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = DecodeU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = DecodeU64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::GetI32(int32_t* v) {
  if (remaining() < 4) return false;
  *v = DecodeI32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::GetI64(int64_t* v) {
  if (remaining() < 8) return false;
  *v = DecodeI64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::GetF64(double* v) {
  if (remaining() < 8) return false;
  *v = DecodeF64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::GetLengthPrefixed(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  return GetRaw(len, s);
}

bool ByteReader::GetRaw(size_t n, std::string* s) {
  if (remaining() < n) return false;
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

}  // namespace fieldrep
