#include "common/bytes.h"

#include <array>

namespace fieldrep {

namespace {
template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) != 0 ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU16(std::string* out, uint16_t v) { PutFixed(out, v); }
void PutU32(std::string* out, uint32_t v) { PutFixed(out, v); }
void PutU64(std::string* out, uint64_t v) { PutFixed(out, v); }
void PutI32(std::string* out, int32_t v) { PutFixed(out, v); }
void PutI64(std::string* out, int64_t v) { PutFixed(out, v); }
void PutF64(std::string* out, double v) { PutFixed(out, v); }

void PutLengthPrefixed(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ByteReader::GetU16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = DecodeU16(data_ + pos_);
  pos_ += 2;
  return true;
}

bool ByteReader::GetU32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = DecodeU32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::GetU64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = DecodeU64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::GetI32(int32_t* v) {
  if (remaining() < 4) return false;
  *v = DecodeI32(data_ + pos_);
  pos_ += 4;
  return true;
}

bool ByteReader::GetI64(int64_t* v) {
  if (remaining() < 8) return false;
  *v = DecodeI64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::GetF64(double* v) {
  if (remaining() < 8) return false;
  *v = DecodeF64(data_ + pos_);
  pos_ += 8;
  return true;
}

bool ByteReader::GetLengthPrefixed(std::string* s) {
  uint32_t len;
  if (!GetU32(&len)) return false;
  return GetRaw(len, s);
}

bool ByteReader::GetRaw(size_t n, std::string* s) {
  if (remaining() < n) return false;
  s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

bool ByteReader::Skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

}  // namespace fieldrep
