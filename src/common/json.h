#ifndef FIELDREP_COMMON_JSON_H_
#define FIELDREP_COMMON_JSON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace fieldrep {

/// \brief A minimal JSON document model: build, serialize, parse.
///
/// The telemetry subsystem renders every metrics snapshot by building a
/// JsonValue tree and serializing it, and the tools re-load dumped
/// snapshots by parsing them back — so "the output round-trips through the
/// JSON parser" holds by construction rather than by string discipline.
/// The model is deliberately small: the seven JSON kinds, object members
/// in insertion order (stable, diff-friendly output), numbers stored as
/// double but printed without a fraction when integral. It is not a
/// general-purpose library (no comments, no trailing commas, UTF-8 passed
/// through verbatim, \uXXXX escapes decoded losslessly only for ASCII).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Number(uint64_t u);
  static JsonValue Number(int64_t i);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  uint64_t as_u64() const { return static_cast<uint64_t>(number_); }
  const std::string& as_string() const { return string_; }

  // --- Array access ----------------------------------------------------------
  size_t size() const { return array_.size(); }
  const JsonValue& at(size_t i) const { return array_[i]; }
  JsonValue& Append(JsonValue v);

  // --- Object access ---------------------------------------------------------
  /// Member lookup; null-kind static sentinel when absent.
  const JsonValue* Find(const std::string& key) const;
  /// Adds (or replaces) a member, keeping first-insertion order.
  JsonValue& Set(const std::string& key, JsonValue v);
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Serializes the tree. `indent` > 0 pretty-prints with that many spaces
  /// per level; 0 emits the compact single-line form.
  std::string Serialize(int indent = 0) const;

  /// Parses `text` into `*out`. Rejects trailing garbage.
  static Status Parse(const std::string& text, JsonValue* out);

 private:
  void SerializeTo(std::string* out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` as the body of a JSON string literal (no quotes added).
void JsonEscape(const std::string& s, std::string* out);

}  // namespace fieldrep

#endif  // FIELDREP_COMMON_JSON_H_
