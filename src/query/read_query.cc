#include <algorithm>
#include <functional>
#include <span>
#include <utility>

#include "common/bytes.h"
#include "common/strings.h"
#include "query/executor.h"
#include "replication/link_object.h"
#include "telemetry/workload_profiler.h"

namespace fieldrep {

namespace {
/// Record tag for output-file tuples (distinct from object type tags and
/// the RecordFile relocation stubs).
constexpr uint16_t kOutputRecordTag = 0xFF02;

std::string SerializeOutputRow(const std::vector<Value>& row, uint32_t pad) {
  std::string out;
  PutU16(&out, kOutputRecordTag);
  PutU16(&out, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) EncodeTaggedValue(v, &out);
  if (out.size() < pad) out.resize(pad, '\0');
  return out;
}

Oid RefOrInvalid(const Value& v) {
  return v.is_ref() ? v.as_ref() : Oid::Invalid();
}

struct PendingReplica {
  size_t row;
  Oid replica_oid;
};
struct PendingJoin {
  size_t row;
  Oid current;
};

/// Splits `n` sorted items into at most `parts` contiguous [begin, end)
/// ranges without splitting a page across ranges: a range boundary is
/// moved forward while the item before it addresses the same page. With a
/// buffer-resident pool this makes the logical I/O counters independent
/// of which worker processes which range — every page is fetched by
/// exactly one range's access stream plus single-flight-deduplicated
/// concurrent hits.
std::vector<std::pair<size_t, size_t>> PageAlignedRanges(
    size_t n, size_t parts, const std::function<PageId(size_t)>& page_of) {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n == 0 || parts == 0) return ranges;
  const size_t target = (n + parts - 1) / parts;
  size_t start = 0;
  while (start < n) {
    size_t end = std::min(start + target, n);
    while (end < n && page_of(end) == page_of(end - 1)) ++end;
    ranges.emplace_back(start, end);
    start = end;
  }
  return ranges;
}
}  // namespace

Status Executor::RunReadStagesSerial(ReadResult* result, ObjectSet* set,
                                     const std::vector<ColumnPlan>& plans,
                                     bool needs_recheck,
                                     const std::optional<BoundClause>& clause,
                                     const std::vector<Oid>& oids,
                                     StageTracer* tracer) {
  // Stage 0: fetch head objects in physical order; evaluate attribute and
  // in-place-replica columns; queue separate-replica reads and joins.
  std::vector<std::vector<PendingReplica>> pending_replicas(plans.size());
  std::vector<std::vector<PendingJoin>> pending_joins(plans.size());

  // Read-ahead: the stages below all visit OID batches in sorted
  // (physical) order, so each batch is announced to the pool a window at
  // a time. Prefetching is best-effort — a failed batch falls back to the
  // on-demand reads, which also keep the logical I/O counters exact.
  BufferPool* pool = set->file().pool();
  const uint32_t window = pool->read_ahead_window();

  for (size_t i = 0; i < oids.size(); ++i) {
    if (window > 0 && i % window == 0) {
      size_t ahead = std::min<size_t>(window, oids.size() - i);
      (void)pool->PrefetchOidPages(
          std::span<const Oid>(oids.data() + i, ahead));
    }
    const Oid& oid = oids[i];
    Object object;
    FIELDREP_RETURN_IF_ERROR(set->Read(oid, &object));
    if (needs_recheck && clause.has_value()) {
      FIELDREP_ASSIGN_OR_RETURN(Value value,
                                EvaluateColumn(clause->plan, object));
      FIELDREP_ASSIGN_OR_RETURN(bool match, clause->predicate.Matches(value));
      if (!match) continue;
    }
    ++result->heads_scanned;
    size_t row_index = result->rows.size();
    std::vector<Value> row(plans.size(), Value::Null());
    for (size_t c = 0; c < plans.size(); ++c) {
      const ColumnPlan& plan = plans[c];
      switch (plan.kind) {
        case ColumnPlan::Kind::kAttr:
          row[c] = object.field(plan.attr_index);
          break;
        case ColumnPlan::Kind::kReplica: {
          if (plan.path->strategy == ReplicationStrategy::kInPlace) {
            const ReplicaValueSlot* slot =
                object.FindReplicaValues(plan.path->id);
            if (slot != nullptr &&
                plan.replica_pos < static_cast<int>(slot->values.size())) {
              row[c] = slot->values[plan.replica_pos];
            }
          } else {
            const ReplicaRefSlot* slot = object.FindReplicaRef(plan.path->id);
            if (slot != nullptr) {
              pending_replicas[c].push_back({row_index, slot->replica_oid});
            }
          }
          break;
        }
        case ColumnPlan::Kind::kJoin: {
          Oid start;
          if (plan.path != nullptr) {
            // Replicated prefix: the next-hop OID comes from the hidden
            // replica slot at zero I/O cost.
            const ReplicaValueSlot* slot =
                object.FindReplicaValues(plan.path->id);
            if (slot != nullptr &&
                plan.replica_pos < static_cast<int>(slot->values.size())) {
              start = RefOrInvalid(slot->values[plan.replica_pos]);
            }
          } else {
            start = RefOrInvalid(object.field(plan.start_attr));
          }
          if (start.valid()) pending_joins[c].push_back({row_index, start});
          break;
        }
      }
    }
    result->rows.push_back(std::move(row));
  }
  tracer->EndStage("heads", oids.size());

  // Stage 1: separate-replica columns — batched, sorted by replica OID so
  // the S' file is read in clustered order.
  uint64_t replica_reads = 0;
  for (size_t c = 0; c < plans.size(); ++c) {
    if (pending_replicas[c].empty()) continue;
    const ColumnPlan& plan = plans[c];
    std::sort(pending_replicas[c].begin(), pending_replicas[c].end(),
              [](const PendingReplica& a, const PendingReplica& b) {
                return a.replica_oid < b.replica_oid;
              });
    FIELDREP_ASSIGN_OR_RETURN(
        RecordFile * file, sets_->GetAuxFile(plan.path->replica_set_file));
    for (size_t i = 0; i < pending_replicas[c].size(); ++i) {
      if (window > 0 && i % window == 0) {
        std::vector<Oid> batch;
        size_t ahead = std::min<size_t>(window, pending_replicas[c].size() - i);
        batch.reserve(ahead);
        for (size_t j = i; j < i + ahead; ++j) {
          batch.push_back(pending_replicas[c][j].replica_oid);
        }
        (void)pool->PrefetchOidPages(batch);
      }
      const PendingReplica& pending = pending_replicas[c][i];
      std::string payload;
      FIELDREP_RETURN_IF_ERROR(file->Read(pending.replica_oid, &payload));
      ReplicaRecord record;
      FIELDREP_RETURN_IF_ERROR(record.Deserialize(payload));
      if (plan.replica_pos < static_cast<int>(record.values.size())) {
        result->rows[pending.row][c] = record.values[plan.replica_pos];
      }
      ++replica_reads;
    }
  }
  tracer->EndStage("replicas", replica_reads);

  // Stage 2: functional joins — level by level, each level visited in
  // sorted OID order (the optimal-join discipline of Section 6.2).
  uint64_t join_reads = 0;
  for (size_t c = 0; c < plans.size(); ++c) {
    if (pending_joins[c].empty()) continue;
    const ColumnPlan& plan = plans[c];
    std::vector<PendingJoin> frontier = std::move(pending_joins[c]);
    for (size_t hop = 0; hop < plan.hop_attrs.size(); ++hop) {
      bool last = (hop + 1 == plan.hop_attrs.size());
      std::sort(frontier.begin(), frontier.end(),
                [](const PendingJoin& a, const PendingJoin& b) {
                  return a.current < b.current;
                });
      std::vector<PendingJoin> next;
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (window > 0 && i % window == 0) {
          std::vector<Oid> batch;
          size_t ahead = std::min<size_t>(window, frontier.size() - i);
          batch.reserve(ahead);
          for (size_t j = i; j < i + ahead; ++j) {
            batch.push_back(frontier[j].current);
          }
          (void)pool->PrefetchOidPages(batch);
        }
        const PendingJoin& pending = frontier[i];
        Object target;
        FIELDREP_RETURN_IF_ERROR(ReadObjectAt(pending.current, &target));
        ++join_reads;
        const Value& v = target.field(plan.hop_attrs[hop]);
        if (last) {
          result->rows[pending.row][c] = v;
        } else {
          Oid next_oid = RefOrInvalid(v);
          if (next_oid.valid()) next.push_back({pending.row, next_oid});
        }
      }
      if (!last) frontier = std::move(next);
    }
  }
  tracer->EndStage("joins", join_reads);
  return Status::OK();
}

Status Executor::RunReadStagesParallel(
    ReadResult* result, ObjectSet* set,
    const std::vector<ColumnPlan>& plans, bool needs_recheck,
    const std::optional<BoundClause>& clause, const std::vector<Oid>& oids,
    StageTracer* tracer) {
  BufferPool* pool = set->file().pool();
  const uint32_t window = pool->read_ahead_window();
  const size_t nworkers = workers_->size();

  // Stage 0 fan-out: page-aligned ranges of the sorted head OIDs. Each
  // worker runs the serial stage-0 loop over its range with worker-local
  // row/pending accumulators (row indices local to the range); the merge
  // below concatenates them in range order, so the result rows come out
  // in exactly the serial order.
  std::vector<std::pair<size_t, size_t>> ranges = PageAlignedRanges(
      oids.size(), nworkers, [&](size_t i) { return oids[i].page_id; });

  struct Stage0Out {
    std::vector<std::vector<Value>> rows;
    uint64_t heads = 0;
    std::vector<std::vector<PendingReplica>> pending_replicas;
    std::vector<std::vector<PendingJoin>> pending_joins;
    Status status;
  };
  std::vector<Stage0Out> outs(ranges.size());
  {
    std::vector<std::function<void()>> tasks;
    tasks.reserve(ranges.size());
    for (size_t r = 0; r < ranges.size(); ++r) {
      outs[r].pending_replicas.resize(plans.size());
      outs[r].pending_joins.resize(plans.size());
      tasks.emplace_back([&, r] {
        Stage0Out& out = outs[r];
        const size_t begin = ranges[r].first;
        const size_t end = ranges[r].second;
        out.status = [&]() -> Status {
          for (size_t i = begin; i < end; ++i) {
            if (window > 0 && (i - begin) % window == 0) {
              size_t ahead = std::min<size_t>(window, end - i);
              (void)pool->PrefetchOidPages(
                  std::span<const Oid>(oids.data() + i, ahead));
            }
            const Oid& oid = oids[i];
            Object object;
            FIELDREP_RETURN_IF_ERROR(set->Read(oid, &object));
            if (needs_recheck && clause.has_value()) {
              FIELDREP_ASSIGN_OR_RETURN(Value value,
                                        EvaluateColumn(clause->plan, object));
              FIELDREP_ASSIGN_OR_RETURN(bool match,
                                        clause->predicate.Matches(value));
              if (!match) continue;
            }
            ++out.heads;
            size_t row_index = out.rows.size();
            std::vector<Value> row(plans.size(), Value::Null());
            for (size_t c = 0; c < plans.size(); ++c) {
              const ColumnPlan& plan = plans[c];
              switch (plan.kind) {
                case ColumnPlan::Kind::kAttr:
                  row[c] = object.field(plan.attr_index);
                  break;
                case ColumnPlan::Kind::kReplica: {
                  if (plan.path->strategy == ReplicationStrategy::kInPlace) {
                    const ReplicaValueSlot* slot =
                        object.FindReplicaValues(plan.path->id);
                    if (slot != nullptr &&
                        plan.replica_pos <
                            static_cast<int>(slot->values.size())) {
                      row[c] = slot->values[plan.replica_pos];
                    }
                  } else {
                    const ReplicaRefSlot* slot =
                        object.FindReplicaRef(plan.path->id);
                    if (slot != nullptr) {
                      out.pending_replicas[c].push_back(
                          {row_index, slot->replica_oid});
                    }
                  }
                  break;
                }
                case ColumnPlan::Kind::kJoin: {
                  Oid start;
                  if (plan.path != nullptr) {
                    const ReplicaValueSlot* slot =
                        object.FindReplicaValues(plan.path->id);
                    if (slot != nullptr &&
                        plan.replica_pos <
                            static_cast<int>(slot->values.size())) {
                      start = RefOrInvalid(slot->values[plan.replica_pos]);
                    }
                  } else {
                    start = RefOrInvalid(object.field(plan.start_attr));
                  }
                  if (start.valid()) {
                    out.pending_joins[c].push_back({row_index, start});
                  }
                  break;
                }
              }
            }
            out.rows.push_back(std::move(row));
          }
          return Status::OK();
        }();
      });
    }
    workers_->RunBatch(std::move(tasks));
  }
  for (const Stage0Out& out : outs) {
    FIELDREP_RETURN_IF_ERROR(out.status);
  }

  // Merge in range order; local row indices shift by the range's base.
  std::vector<std::vector<PendingReplica>> pending_replicas(plans.size());
  std::vector<std::vector<PendingJoin>> pending_joins(plans.size());
  for (Stage0Out& out : outs) {
    const size_t base = result->rows.size();
    result->heads_scanned += out.heads;
    for (std::vector<Value>& row : out.rows) {
      result->rows.push_back(std::move(row));
    }
    for (size_t c = 0; c < plans.size(); ++c) {
      for (const PendingReplica& p : out.pending_replicas[c]) {
        pending_replicas[c].push_back({base + p.row, p.replica_oid});
      }
      for (const PendingJoin& p : out.pending_joins[c]) {
        pending_joins[c].push_back({base + p.row, p.current});
      }
    }
  }
  tracer->EndStage("heads", oids.size());

  // Stage 1: separate-replica columns. Globally sorted by replica OID
  // (the serial clustered-read order), then page-aligned ranges; each
  // entry writes its own result cell, so workers touch disjoint memory.
  uint64_t replica_reads = 0;
  for (size_t c = 0; c < plans.size(); ++c) {
    if (pending_replicas[c].empty()) continue;
    const ColumnPlan& plan = plans[c];
    std::vector<PendingReplica>& pending = pending_replicas[c];
    std::sort(pending.begin(), pending.end(),
              [](const PendingReplica& a, const PendingReplica& b) {
                return a.replica_oid < b.replica_oid;
              });
    FIELDREP_ASSIGN_OR_RETURN(
        RecordFile * file, sets_->GetAuxFile(plan.path->replica_set_file));
    std::vector<std::pair<size_t, size_t>> col_ranges =
        PageAlignedRanges(pending.size(), nworkers, [&](size_t i) {
          return pending[i].replica_oid.page_id;
        });
    std::vector<Status> statuses(col_ranges.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(col_ranges.size());
    for (size_t r = 0; r < col_ranges.size(); ++r) {
      tasks.emplace_back([&, r] {
        const size_t begin = col_ranges[r].first;
        const size_t end = col_ranges[r].second;
        statuses[r] = [&]() -> Status {
          for (size_t i = begin; i < end; ++i) {
            if (window > 0 && (i - begin) % window == 0) {
              std::vector<Oid> batch;
              size_t ahead = std::min<size_t>(window, end - i);
              batch.reserve(ahead);
              for (size_t j = i; j < i + ahead; ++j) {
                batch.push_back(pending[j].replica_oid);
              }
              (void)pool->PrefetchOidPages(batch);
            }
            const PendingReplica& entry = pending[i];
            std::string payload;
            FIELDREP_RETURN_IF_ERROR(file->Read(entry.replica_oid, &payload));
            ReplicaRecord record;
            FIELDREP_RETURN_IF_ERROR(record.Deserialize(payload));
            if (plan.replica_pos < static_cast<int>(record.values.size())) {
              result->rows[entry.row][c] = record.values[plan.replica_pos];
            }
          }
          return Status::OK();
        }();
      });
    }
    workers_->RunBatch(std::move(tasks));
    for (const Status& s : statuses) {
      FIELDREP_RETURN_IF_ERROR(s);
    }
    replica_reads += pending.size();
  }
  tracer->EndStage("replicas", replica_reads);

  // Stage 2: functional joins, level by level. Each level sorts the
  // frontier globally (the optimal-join discipline), fans out over
  // page-aligned ranges, and concatenates the workers' next-frontier
  // vectors in range order; the next level re-sorts, so concatenation
  // order never affects the outcome.
  uint64_t join_reads = 0;
  for (size_t c = 0; c < plans.size(); ++c) {
    if (pending_joins[c].empty()) continue;
    const ColumnPlan& plan = plans[c];
    std::vector<PendingJoin> frontier = std::move(pending_joins[c]);
    for (size_t hop = 0; hop < plan.hop_attrs.size(); ++hop) {
      bool last = (hop + 1 == plan.hop_attrs.size());
      std::sort(frontier.begin(), frontier.end(),
                [](const PendingJoin& a, const PendingJoin& b) {
                  return a.current < b.current;
                });
      std::vector<std::pair<size_t, size_t>> hop_ranges = PageAlignedRanges(
          frontier.size(), nworkers,
          [&](size_t i) { return frontier[i].current.page_id; });
      std::vector<Status> statuses(hop_ranges.size());
      std::vector<std::vector<PendingJoin>> nexts(hop_ranges.size());
      std::vector<std::function<void()>> tasks;
      tasks.reserve(hop_ranges.size());
      for (size_t r = 0; r < hop_ranges.size(); ++r) {
        tasks.emplace_back([&, r, hop, last] {
          const size_t begin = hop_ranges[r].first;
          const size_t end = hop_ranges[r].second;
          statuses[r] = [&]() -> Status {
            for (size_t i = begin; i < end; ++i) {
              if (window > 0 && (i - begin) % window == 0) {
                std::vector<Oid> batch;
                size_t ahead = std::min<size_t>(window, end - i);
                batch.reserve(ahead);
                for (size_t j = i; j < i + ahead; ++j) {
                  batch.push_back(frontier[j].current);
                }
                (void)pool->PrefetchOidPages(batch);
              }
              const PendingJoin& entry = frontier[i];
              Object target;
              FIELDREP_RETURN_IF_ERROR(ReadObjectAt(entry.current, &target));
              const Value& v = target.field(plan.hop_attrs[hop]);
              if (last) {
                result->rows[entry.row][c] = v;
              } else {
                Oid next_oid = RefOrInvalid(v);
                if (next_oid.valid()) nexts[r].push_back({entry.row, next_oid});
              }
            }
            return Status::OK();
          }();
        });
      }
      workers_->RunBatch(std::move(tasks));
      for (const Status& s : statuses) {
        FIELDREP_RETURN_IF_ERROR(s);
      }
      join_reads += frontier.size();
      if (!last) {
        frontier.clear();
        for (std::vector<PendingJoin>& next : nexts) {
          frontier.insert(frontier.end(), next.begin(), next.end());
        }
      }
    }
  }
  tracer->EndStage("joins", join_reads);
  return Status::OK();
}

Status Executor::ExecuteRead(const ReadQuery& query, ReadResult* result,
                             QueryTrace* trace) {
  *result = ReadResult();
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(query.set_name));
  StageTracer tracer(trace, set->file().pool());
  if (trace != nullptr) {
    trace->kind = QueryTrace::Kind::kRead;
    trace->set_name = query.set_name;
  }

  // Plan projections.
  std::vector<ColumnPlan> plans;
  plans.reserve(query.projections.size());
  for (const std::string& projection : query.projections) {
    ColumnPlan plan;
    FIELDREP_RETURN_IF_ERROR(PlanColumn(*set, query.set_name,
                                        query.use_replication, projection,
                                        &plan));
    // "Not propagated until needed": reading through a deferred path is
    // the need.
    FIELDREP_RETURN_IF_ERROR(FlushDeferredForPlan(plan));
    plans.push_back(std::move(plan));
  }
  result->access.reserve(plans.size());
  for (const ColumnPlan& plan : plans) {
    switch (plan.kind) {
      case ColumnPlan::Kind::kAttr:
        result->access.push_back(ReadResult::Access::kAttribute);
        break;
      case ColumnPlan::Kind::kReplica:
        result->access.push_back(
            plan.path->strategy == ReplicationStrategy::kInPlace
                ? ReadResult::Access::kReplicaInPlace
                : ReadResult::Access::kReplicaSeparate);
        break;
      case ColumnPlan::Kind::kJoin:
        result->access.push_back(ReadResult::Access::kJoin);
        break;
    }
  }
  if (trace != nullptr) {
    trace->strategies.reserve(result->access.size());
    for (ReadResult::Access a : result->access) {
      switch (a) {
        case ReadResult::Access::kAttribute:
          trace->strategies.push_back("attr");
          break;
        case ReadResult::Access::kReplicaInPlace:
          trace->strategies.push_back("replica-inplace");
          break;
        case ReadResult::Access::kReplicaSeparate:
          trace->strategies.push_back("replica-separate");
          break;
        case ReadResult::Access::kJoin:
          trace->strategies.push_back("join");
          break;
      }
    }
  }
  tracer.EndStage("plan", plans.size());

  // Resolve the clause to sorted head OIDs.
  bool needs_recheck = false;
  std::optional<BoundClause> clause;
  std::vector<Oid> oids;
  FIELDREP_RETURN_IF_ERROR(CollectTargets(
      set, query.predicate, query.set_name, query.use_replication,
      &result->used_index, &needs_recheck, &clause, &oids));
  if (trace != nullptr) trace->used_index = result->used_index;
  tracer.EndStage("collect", oids.size());

  // With one worker (or no pool) run the pre-parallelism serial code
  // unchanged; the parallel path requires at least two items to split.
  const bool parallel =
      workers_ != nullptr && workers_->size() > 1 && oids.size() > 1;
  if (parallel) {
    if (trace != nullptr) {
      trace->parallel_ranges = PageAlignedRanges(
          oids.size(), workers_->size(),
          [&](size_t i) { return oids[i].page_id; }).size();
    }
    FIELDREP_RETURN_IF_ERROR(RunReadStagesParallel(
        result, set, plans, needs_recheck, clause, oids, &tracer));
  } else {
    FIELDREP_RETURN_IF_ERROR(RunReadStagesSerial(
        result, set, plans, needs_recheck, clause, oids, &tracer));
  }
  // Stage 3: spool result tuples to the output file T. Always serial —
  // output insertion is a mutation, so it holds the output lock (the
  // only lock a read query ever takes; set locks stay reader-free).
  if (query.write_output) {
    MutexLock write_lock(output_mu_);
    FIELDREP_ASSIGN_OR_RETURN(RecordFile * out, OutputFileLocked());
    for (const std::vector<Value>& row : result->rows) {
      Oid ignored;
      FIELDREP_RETURN_IF_ERROR(
          out->Insert(SerializeOutputRow(row, query.output_pad), &ignored));
      ++result->rows_written;
    }
    tracer.EndStage("output", result->rows_written);
  }
  if (trace != nullptr) {
    trace->rows = result->rows.size();
  }
  tracer.Finish();

  // Workload profile: one record per replicated-path or join projection,
  // keyed by the catalog path spec when one exists (so read-side and
  // propagation activity aggregate under the same key).
  if (profiler_ != nullptr) {
    for (size_t c = 0; c < plans.size(); ++c) {
      const ColumnPlan& plan = plans[c];
      if (plan.kind == ColumnPlan::Kind::kAttr) continue;
      const bool from_replica = plan.kind == ColumnPlan::Kind::kReplica;
      const std::string spec =
          plan.path != nullptr ? plan.path->spec
                               : query.set_name + "." + query.projections[c];
      profiler_->RecordPathRead(spec, from_replica, result->rows.size());
    }
  }
  return Status::OK();
}

}  // namespace fieldrep
