#include <algorithm>
#include <span>

#include "common/bytes.h"
#include "common/strings.h"
#include "query/executor.h"
#include "replication/link_object.h"

namespace fieldrep {

namespace {
/// Record tag for output-file tuples (distinct from object type tags and
/// the RecordFile relocation stubs).
constexpr uint16_t kOutputRecordTag = 0xFF02;

std::string SerializeOutputRow(const std::vector<Value>& row, uint32_t pad) {
  std::string out;
  PutU16(&out, kOutputRecordTag);
  PutU16(&out, static_cast<uint16_t>(row.size()));
  for (const Value& v : row) EncodeTaggedValue(v, &out);
  if (out.size() < pad) out.resize(pad, '\0');
  return out;
}

Oid RefOrInvalid(const Value& v) {
  return v.is_ref() ? v.as_ref() : Oid::Invalid();
}
}  // namespace

Status Executor::ExecuteRead(const ReadQuery& query, ReadResult* result) {
  *result = ReadResult();
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(query.set_name));

  // Plan projections.
  std::vector<ColumnPlan> plans;
  plans.reserve(query.projections.size());
  for (const std::string& projection : query.projections) {
    ColumnPlan plan;
    FIELDREP_RETURN_IF_ERROR(PlanColumn(*set, query.set_name,
                                        query.use_replication, projection,
                                        &plan));
    // "Not propagated until needed": reading through a deferred path is
    // the need.
    FIELDREP_RETURN_IF_ERROR(FlushDeferredForPlan(plan));
    plans.push_back(std::move(plan));
  }
  result->access.reserve(plans.size());
  for (const ColumnPlan& plan : plans) {
    switch (plan.kind) {
      case ColumnPlan::Kind::kAttr:
        result->access.push_back(ReadResult::Access::kAttribute);
        break;
      case ColumnPlan::Kind::kReplica:
        result->access.push_back(
            plan.path->strategy == ReplicationStrategy::kInPlace
                ? ReadResult::Access::kReplicaInPlace
                : ReadResult::Access::kReplicaSeparate);
        break;
      case ColumnPlan::Kind::kJoin:
        result->access.push_back(ReadResult::Access::kJoin);
        break;
    }
  }

  // Resolve the clause to sorted head OIDs.
  bool needs_recheck = false;
  std::optional<BoundClause> clause;
  std::vector<Oid> oids;
  FIELDREP_RETURN_IF_ERROR(CollectTargets(
      set, query.predicate, query.set_name, query.use_replication,
      &result->used_index, &needs_recheck, &clause, &oids));

  // Stage 0: fetch head objects in physical order; evaluate attribute and
  // in-place-replica columns; queue separate-replica reads and joins.
  struct PendingReplica {
    size_t row;
    Oid replica_oid;
  };
  struct PendingJoin {
    size_t row;
    Oid current;
  };
  std::vector<std::vector<PendingReplica>> pending_replicas(plans.size());
  std::vector<std::vector<PendingJoin>> pending_joins(plans.size());

  // Read-ahead: the stages below all visit OID batches in sorted
  // (physical) order, so each batch is announced to the pool a window at
  // a time. Prefetching is best-effort — a failed batch falls back to the
  // on-demand reads, which also keep the logical I/O counters exact.
  BufferPool* pool = set->file().pool();
  const uint32_t window = pool->read_ahead_window();

  for (size_t i = 0; i < oids.size(); ++i) {
    if (window > 0 && i % window == 0) {
      size_t ahead = std::min<size_t>(window, oids.size() - i);
      (void)pool->PrefetchOidPages(
          std::span<const Oid>(oids.data() + i, ahead));
    }
    const Oid& oid = oids[i];
    Object object;
    FIELDREP_RETURN_IF_ERROR(set->Read(oid, &object));
    if (needs_recheck && clause.has_value()) {
      FIELDREP_ASSIGN_OR_RETURN(Value value,
                                EvaluateColumn(clause->plan, object));
      FIELDREP_ASSIGN_OR_RETURN(bool match, clause->predicate.Matches(value));
      if (!match) continue;
    }
    ++result->heads_scanned;
    size_t row_index = result->rows.size();
    std::vector<Value> row(plans.size(), Value::Null());
    for (size_t c = 0; c < plans.size(); ++c) {
      const ColumnPlan& plan = plans[c];
      switch (plan.kind) {
        case ColumnPlan::Kind::kAttr:
          row[c] = object.field(plan.attr_index);
          break;
        case ColumnPlan::Kind::kReplica: {
          if (plan.path->strategy == ReplicationStrategy::kInPlace) {
            const ReplicaValueSlot* slot =
                object.FindReplicaValues(plan.path->id);
            if (slot != nullptr &&
                plan.replica_pos < static_cast<int>(slot->values.size())) {
              row[c] = slot->values[plan.replica_pos];
            }
          } else {
            const ReplicaRefSlot* slot = object.FindReplicaRef(plan.path->id);
            if (slot != nullptr) {
              pending_replicas[c].push_back({row_index, slot->replica_oid});
            }
          }
          break;
        }
        case ColumnPlan::Kind::kJoin: {
          Oid start;
          if (plan.path != nullptr) {
            // Replicated prefix: the next-hop OID comes from the hidden
            // replica slot at zero I/O cost.
            const ReplicaValueSlot* slot =
                object.FindReplicaValues(plan.path->id);
            if (slot != nullptr &&
                plan.replica_pos < static_cast<int>(slot->values.size())) {
              start = RefOrInvalid(slot->values[plan.replica_pos]);
            }
          } else {
            start = RefOrInvalid(object.field(plan.start_attr));
          }
          if (start.valid()) pending_joins[c].push_back({row_index, start});
          break;
        }
      }
    }
    result->rows.push_back(std::move(row));
  }

  // Stage 1: separate-replica columns — batched, sorted by replica OID so
  // the S' file is read in clustered order.
  for (size_t c = 0; c < plans.size(); ++c) {
    if (pending_replicas[c].empty()) continue;
    const ColumnPlan& plan = plans[c];
    std::sort(pending_replicas[c].begin(), pending_replicas[c].end(),
              [](const PendingReplica& a, const PendingReplica& b) {
                return a.replica_oid < b.replica_oid;
              });
    FIELDREP_ASSIGN_OR_RETURN(
        RecordFile * file, sets_->GetAuxFile(plan.path->replica_set_file));
    for (size_t i = 0; i < pending_replicas[c].size(); ++i) {
      if (window > 0 && i % window == 0) {
        std::vector<Oid> batch;
        size_t ahead = std::min<size_t>(window, pending_replicas[c].size() - i);
        batch.reserve(ahead);
        for (size_t j = i; j < i + ahead; ++j) {
          batch.push_back(pending_replicas[c][j].replica_oid);
        }
        (void)pool->PrefetchOidPages(batch);
      }
      const PendingReplica& pending = pending_replicas[c][i];
      std::string payload;
      FIELDREP_RETURN_IF_ERROR(file->Read(pending.replica_oid, &payload));
      ReplicaRecord record;
      FIELDREP_RETURN_IF_ERROR(record.Deserialize(payload));
      if (plan.replica_pos < static_cast<int>(record.values.size())) {
        result->rows[pending.row][c] = record.values[plan.replica_pos];
      }
    }
  }

  // Stage 2: functional joins — level by level, each level visited in
  // sorted OID order (the optimal-join discipline of Section 6.2).
  for (size_t c = 0; c < plans.size(); ++c) {
    if (pending_joins[c].empty()) continue;
    const ColumnPlan& plan = plans[c];
    std::vector<PendingJoin> frontier = std::move(pending_joins[c]);
    for (size_t hop = 0; hop < plan.hop_attrs.size(); ++hop) {
      bool last = (hop + 1 == plan.hop_attrs.size());
      std::sort(frontier.begin(), frontier.end(),
                [](const PendingJoin& a, const PendingJoin& b) {
                  return a.current < b.current;
                });
      std::vector<PendingJoin> next;
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (window > 0 && i % window == 0) {
          std::vector<Oid> batch;
          size_t ahead = std::min<size_t>(window, frontier.size() - i);
          batch.reserve(ahead);
          for (size_t j = i; j < i + ahead; ++j) {
            batch.push_back(frontier[j].current);
          }
          (void)pool->PrefetchOidPages(batch);
        }
        const PendingJoin& pending = frontier[i];
        Object target;
        FIELDREP_RETURN_IF_ERROR(ReadObjectAt(pending.current, &target));
        const Value& v = target.field(plan.hop_attrs[hop]);
        if (last) {
          result->rows[pending.row][c] = v;
        } else {
          Oid next_oid = RefOrInvalid(v);
          if (next_oid.valid()) next.push_back({pending.row, next_oid});
        }
      }
      if (!last) frontier = std::move(next);
    }
  }

  // Stage 3: spool result tuples to the output file T.
  if (query.write_output) {
    FIELDREP_ASSIGN_OR_RETURN(RecordFile * out, output_file());
    for (const std::vector<Value>& row : result->rows) {
      Oid ignored;
      FIELDREP_RETURN_IF_ERROR(
          out->Insert(SerializeOutputRow(row, query.output_pad), &ignored));
      ++result->rows_written;
    }
  }
  return Status::OK();
}

}  // namespace fieldrep
