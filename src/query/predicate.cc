#include "query/predicate.h"

#include <limits>

#include "index/btree.h"

namespace fieldrep {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

Result<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) {
    return Status::InvalidArgument("cannot compare null values");
  }
  if ((a.is_int32() || a.is_int64()) && (b.is_int32() || b.is_int64())) {
    int64_t x = a.is_int32() ? a.as_int32() : a.as_int64();
    int64_t y = b.is_int32() ? b.as_int32() : b.as_int64();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_double() || b.is_double()) {
    if (!(a.is_double() || a.is_int32() || a.is_int64()) ||
        !(b.is_double() || b.is_int32() || b.is_int64())) {
      return Status::InvalidArgument("cannot compare " + a.ToString() +
                                     " with " + b.ToString());
    }
    double x = a.is_double() ? a.as_double()
                             : (a.is_int32() ? a.as_int32() : a.as_int64());
    double y = b.is_double() ? b.as_double()
                             : (b.is_int32() ? b.as_int32() : b.as_int64());
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_ref() && b.is_ref()) {
    uint64_t x = a.as_ref().Packed(), y = b.as_ref().Packed();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  return Status::InvalidArgument("cannot compare " + a.ToString() + " with " +
                                 b.ToString());
}

std::string Predicate::ToString() const {
  if (op == CompareOp::kBetween) {
    return attr_name + " between " + operand.ToString() + " and " +
           operand2.ToString();
  }
  return attr_name + " " + CompareOpName(op) + " " + operand.ToString();
}

Result<BoundPredicate> BoundPredicate::Bind(const Predicate& predicate,
                                            const TypeDescriptor& type) {
  int attr_index = type.FindAttribute(predicate.attr_name);
  if (attr_index < 0) {
    return Status::InvalidArgument("type " + type.name() +
                                   " has no attribute " +
                                   predicate.attr_name);
  }
  return BindToAttribute(predicate, type.attribute(attr_index), attr_index);
}

Result<BoundPredicate> BoundPredicate::BindToAttribute(
    const Predicate& predicate, const AttributeDescriptor& attr,
    int attr_index) {
  BoundPredicate bound;
  bound.attr_index_ = attr_index;
  bound.field_type_ = attr.type;
  bound.op_ = predicate.op;
  FIELDREP_ASSIGN_OR_RETURN(bound.lo_, predicate.operand.CoerceTo(attr));
  if (predicate.op == CompareOp::kBetween) {
    FIELDREP_ASSIGN_OR_RETURN(bound.hi_, predicate.operand2.CoerceTo(attr));
  }
  return bound;
}

Result<bool> BoundPredicate::Matches(const Value& field_value) const {
  if (field_value.is_null()) return false;
  switch (op_) {
    case CompareOp::kEq: {
      FIELDREP_ASSIGN_OR_RETURN(int c, CompareValues(field_value, lo_));
      return c == 0;
    }
    case CompareOp::kLt: {
      FIELDREP_ASSIGN_OR_RETURN(int c, CompareValues(field_value, lo_));
      return c < 0;
    }
    case CompareOp::kLe: {
      FIELDREP_ASSIGN_OR_RETURN(int c, CompareValues(field_value, lo_));
      return c <= 0;
    }
    case CompareOp::kGt: {
      FIELDREP_ASSIGN_OR_RETURN(int c, CompareValues(field_value, lo_));
      return c > 0;
    }
    case CompareOp::kGe: {
      FIELDREP_ASSIGN_OR_RETURN(int c, CompareValues(field_value, lo_));
      return c >= 0;
    }
    case CompareOp::kBetween: {
      FIELDREP_ASSIGN_OR_RETURN(int c1, CompareValues(field_value, lo_));
      if (c1 < 0) return false;
      FIELDREP_ASSIGN_OR_RETURN(int c2, CompareValues(field_value, hi_));
      return c2 <= 0;
    }
  }
  return Status::Internal("unreachable");
}

Status BoundPredicate::KeyRange(int64_t* lo, int64_t* hi, bool* exact) const {
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  // String keys are 8-byte prefixes: distinct strings can share a key, so
  // hits must be re-checked. Integer and ref keys are exact.
  bool key_is_exact = (field_type_ == FieldType::kInt32 ||
                       field_type_ == FieldType::kInt64 ||
                       field_type_ == FieldType::kRef);
  FIELDREP_ASSIGN_OR_RETURN(int64_t key_lo, BTreeKeyForValue(lo_));
  switch (op_) {
    case CompareOp::kEq:
      *lo = key_lo;
      *hi = key_lo;
      break;
    case CompareOp::kLt:
      *lo = kMin;
      *hi = key_lo == kMin ? kMin : key_lo - 1;
      // For non-exact key spaces the boundary key may hold matching values.
      if (!key_is_exact) *hi = key_lo;
      break;
    case CompareOp::kLe:
      *lo = kMin;
      *hi = key_lo;
      break;
    case CompareOp::kGt:
      *lo = key_is_exact ? (key_lo == kMax ? kMax : key_lo + 1) : key_lo;
      *hi = kMax;
      break;
    case CompareOp::kGe:
      *lo = key_lo;
      *hi = kMax;
      break;
    case CompareOp::kBetween: {
      FIELDREP_ASSIGN_OR_RETURN(int64_t key_hi, BTreeKeyForValue(hi_));
      *lo = key_lo;
      *hi = key_hi;
      break;
    }
  }
  *exact = key_is_exact;
  return Status::OK();
}

}  // namespace fieldrep
