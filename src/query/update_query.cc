#include <algorithm>

#include "common/strings.h"
#include "query/executor.h"

namespace fieldrep {

Status Executor::ExecuteUpdate(const UpdateQuery& query,
                               UpdateResult* result, QueryTrace* trace) {
  *result = UpdateResult();
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(query.set_name));
  StageTracer tracer(trace, set->file().pool());
  if (trace != nullptr) {
    trace->kind = QueryTrace::Kind::kUpdate;
    trace->set_name = query.set_name;
  }

  // Bind assignments to attribute indices up front.
  std::vector<std::pair<int, Value>> assignments;
  assignments.reserve(query.assignments.size());
  for (const auto& [attr_name, value] : query.assignments) {
    int attr = set->type().FindAttribute(attr_name);
    if (attr < 0) {
      return Status::InvalidArgument("type " + set->type().name() +
                                     " has no attribute " + attr_name);
    }
    if (trace != nullptr) trace->strategies.push_back(attr_name);
    assignments.emplace_back(attr, value);
  }
  tracer.EndStage("plan", assignments.size());

  bool needs_recheck = false;
  std::optional<BoundClause> clause;
  std::vector<Oid> oids;
  FIELDREP_RETURN_IF_ERROR(CollectTargets(
      set, query.predicate, query.set_name, /*use_replication=*/true,
      &result->used_index, &needs_recheck, &clause, &oids));
  if (trace != nullptr) trace->used_index = result->used_index;
  tracer.EndStage("collect", oids.size());

  for (const Oid& oid : oids) {
    if (needs_recheck && clause.has_value()) {
      Object object;
      FIELDREP_RETURN_IF_ERROR(set->Read(oid, &object));
      FIELDREP_ASSIGN_OR_RETURN(Value value,
                                EvaluateColumn(clause->plan, object));
      FIELDREP_ASSIGN_OR_RETURN(bool match, clause->predicate.Matches(value));
      if (!match) continue;
    }
    FIELDREP_RETURN_IF_ERROR(
        replication_->UpdateFields(query.set_name, oid, assignments));
    ++result->objects_updated;
  }
  tracer.EndStage("update", result->objects_updated);
  if (trace != nullptr) trace->rows = result->objects_updated;
  tracer.Finish();
  return Status::OK();
}

}  // namespace fieldrep
