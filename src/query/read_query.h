#ifndef FIELDREP_QUERY_READ_QUERY_H_
#define FIELDREP_QUERY_READ_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "objects/value.h"
#include "query/predicate.h"

namespace fieldrep {

/// \brief A retrieval query in the shape of the paper's read queries
/// (Sections 3.1 and 6):
///
///   retrieve (Emp1.name, Emp1.salary, Emp1.dept.name)
///   where Emp1.salary > 100000
///
/// Projections are plain attributes or dotted reference paths relative to
/// the set. Paths are answered from replicas when a replication path covers
/// them (exactly, via a `.all` path, or via a replicated prefix ending in a
/// ref attribute — the Section 3.3.3 collapse); otherwise the executor
/// performs functional joins, batched level-by-level in sorted OID order so
/// each page is read once (the cost model's optimal-join assumption).
struct ReadQuery {
  std::string set_name;
  std::vector<std::string> projections;
  std::optional<Predicate> predicate;  ///< absent = whole set
  /// When false the planner ignores replicas and always joins (baseline /
  /// ablation support).
  bool use_replication = true;
  /// Write result tuples to the output file T (counted I/O), as the cost
  /// model's C_generate/T does.
  bool write_output = false;
  /// Pad each output record to this many bytes (0 = natural size); lets
  /// benchmarks match the model's t = 100.
  uint32_t output_pad = 0;
};

/// \brief Result rows plus execution counters.
struct ReadResult {
  std::vector<std::vector<Value>> rows;
  uint64_t rows_written = 0;   ///< records appended to the output file
  uint64_t heads_scanned = 0;  ///< head objects fetched
  bool used_index = false;
  /// How each projection was answered (aligned with query.projections).
  enum class Access { kAttribute, kReplicaInPlace, kReplicaSeparate, kJoin };
  std::vector<Access> access;
};

}  // namespace fieldrep

#endif  // FIELDREP_QUERY_READ_QUERY_H_
