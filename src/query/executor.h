#ifndef FIELDREP_QUERY_EXECUTOR_H_
#define FIELDREP_QUERY_EXECUTOR_H_

#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/annotated_mutex.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/index_manager.h"
#include "objects/set_provider.h"
#include "query/read_query.h"
#include "query/update_query.h"
#include "replication/replication_manager.h"
#include "telemetry/query_trace.h"

namespace fieldrep {

class WorkloadProfiler;

/// \brief Executes read and update queries.
///
/// Reads follow the paper's processing model (Section 6.5): descend the
/// index on the clause attribute (or scan when none exists), fetch the
/// selected head objects in sorted-OID order, answer path projections from
/// replicas when possible — eliminating functional joins — and otherwise
/// join level-by-level with per-level OID sorting, so that every page
/// needed by the join is read exactly once through the buffer pool (the
/// model's optimal-join assumption). Result tuples can be spooled to the
/// output file T.
///
/// Updates locate target objects the same way and route every assignment
/// through the ReplicationManager so replicated data stays consistent.
///
/// Parallel reads (DESIGN.md §10): when a worker pool with more than one
/// thread is attached, ExecuteRead partitions each stage's sorted OID
/// batch into page-aligned ranges and runs them concurrently. Page
/// alignment means no page is split across workers, so with a
/// buffer-resident pool the logical I/O counters (fetches, hits,
/// disk_reads) are identical to the serial plan's — each page costs one
/// disk_read plus hits regardless of which worker touches it first. With
/// no pool (or one thread) the executor runs the original serial code
/// path unchanged.
class Executor {
 public:
  Executor(Catalog* catalog, SetProvider* sets, IndexManager* indexes,
           ReplicationManager* replication);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// `trace`, when non-null, is filled with the query's EXPLAIN ANALYZE:
  /// per-stage wall time and pool-level IoStats deltas (telescoping, so
  /// stage deltas sum exactly to the query total), row counts, strategy
  /// choices, and parallel fan-out. Tracing reads the shared pool
  /// counters only at stage boundaries — it never changes what I/O the
  /// query performs.
  Status ExecuteRead(const ReadQuery& query, ReadResult* result,
                     QueryTrace* trace = nullptr);
  Status ExecuteUpdate(const UpdateQuery& query, UpdateResult* result,
                       QueryTrace* trace = nullptr);

  /// Attaches (or detaches, with nullptr) the worker pool parallel reads
  /// run on. Not thread-safe: call while no query is executing.
  void set_worker_pool(ThreadPool* pool) { workers_ = pool; }
  /// Routes deferred-propagation flushes through the Database, which
  /// runs them as locked write transactions (DESIGN.md §14). Without a
  /// callback the flush calls the replication manager directly
  /// (standalone executor tests).
  void set_flush_deferred(std::function<Status(uint16_t)> fn) {
    flush_deferred_ = std::move(fn);
  }
  /// Attaches the workload profiler; per-path read recording (once per
  /// query and projection, with the row count) is a no-op when null.
  void set_profiler(WorkloadProfiler* profiler) { profiler_ = profiler; }

  /// Lazily creates the output file T; called automatically by reads with
  /// write_output.
  Status EnsureOutputFile();
  /// Clears the output file (call before measuring a query's I/O so old
  /// pages are not rewritten into the measurement).
  Status TruncateOutput();
  Result<RecordFile*> output_file();
  /// Checkpoint support.
  FileId output_file_id() const {
    return output_file_id_.load(std::memory_order_acquire);
  }
  void restore_output_file_id(FileId id) {
    output_file_id_.store(id, std::memory_order_release);
  }
  /// Serialized metadata of the output file, with its id stored into
  /// `file_id` (kInvalidFileId, with an empty string, when no output file
  /// exists yet). Both are read under the output lock so a concurrent
  /// spooling reader cannot tear the pair. Checkpoint support (the output
  /// file is scratch state, excluded from the committed-metadata
  /// registry).
  std::string EncodeOutputMetadata(FileId* file_id);

 private:
  struct ColumnPlan {
    enum class Kind { kAttr, kReplica, kJoin };
    Kind kind = Kind::kAttr;
    int attr_index = -1;                        // kAttr
    const ReplicationPathInfo* path = nullptr;  // kReplica / replica-start join
    int replica_pos = -1;  // index into the path's terminal values
    int start_attr = -1;   // kJoin without replica start: head ref attribute
    /// Attribute indices applied to successively fetched objects; all but
    /// the last must be refs, the last produces the column value.
    std::vector<int> hop_attrs;
  };

  /// A predicate bound together with the plan that produces the value it
  /// tests: a plain attribute, a replica slot, or a reference-path
  /// resolution (Section 3.3.4's clause on Emp1.dept.org.name).
  struct BoundClause {
    BoundPredicate predicate;
    ColumnPlan plan;
  };

  Status PlanColumn(const ObjectSet& set, const std::string& set_name,
                    bool use_replication, const std::string& projection,
                    ColumnPlan* plan) const;

  /// Resolves one column value for a fetched head object. Join columns are
  /// resolved eagerly with per-object reads (used for predicate evaluation;
  /// projections batch joins instead).
  Result<Value> EvaluateColumn(const ColumnPlan& plan,
                               const Object& head) const;

  Status BindClause(const ObjectSet& set, const std::string& set_name,
                    bool use_replication, const Predicate& predicate,
                    BoundClause* clause) const;

  /// Resolves candidate OIDs for the clause: index range scan when an index
  /// exists on the clause expression, full scan otherwise. Candidates come
  /// back sorted; `needs_recheck` says whether the predicate must be
  /// re-evaluated against the fetched objects.
  Status CollectTargets(ObjectSet* set,
                        const std::optional<Predicate>& predicate,
                        const std::string& set_name, bool use_replication,
                        bool* used_index, bool* needs_recheck,
                        std::optional<BoundClause>* clause,
                        std::vector<Oid>* oids);

  Status ReadObjectAt(const Oid& oid, Object* object,
                      ObjectSet** set_out = nullptr) const;

  /// Deferred-propagation hook ("updates are not propagated until
  /// needed"): when a plan reads through a deferred in-place path, drain
  /// that path's pending queue first.
  Status FlushDeferredForPlan(const ColumnPlan& plan);

  /// Stages 0–2 of ExecuteRead, original single-threaded implementation.
  /// `tracer` brackets the stages (no-op when untraced).
  Status RunReadStagesSerial(ReadResult* result, ObjectSet* set,
                             const std::vector<ColumnPlan>& plans,
                             bool needs_recheck,
                             const std::optional<BoundClause>& clause,
                             const std::vector<Oid>& oids,
                             StageTracer* tracer);

  /// Stages 0–2 of ExecuteRead fanned out over the worker pool. Stage
  /// boundaries are RunBatch barriers, so the tracer's pool snapshots are
  /// quiesced and the per-stage deltas are exact.
  Status RunReadStagesParallel(ReadResult* result, ObjectSet* set,
                               const std::vector<ColumnPlan>& plans,
                               bool needs_recheck,
                               const std::optional<BoundClause>& clause,
                               const std::vector<Oid>& oids,
                               StageTracer* tracer);

  Status EnsureOutputFileLocked() REQUIRES(output_mu_);
  Result<RecordFile*> OutputFileLocked() REQUIRES(output_mu_);

  Catalog* catalog_;
  SetProvider* sets_;
  IndexManager* indexes_;
  ReplicationManager* replication_;
  /// The output file id is written under output_mu_ but read by
  /// unsynchronized checkpoint paths, so it is atomic on top.
  std::atomic<FileId> output_file_id_{kInvalidFileId};
  ThreadPool* workers_ = nullptr;
  /// Serializes output-file creation, truncation, and stage-3 spooling —
  /// the only mutating steps of a read query. Readers of other files
  /// never take it; writers never touch the output file.
  mutable Mutex output_mu_{LockRank::kExecutorOutput, "executor.output_mu"};
  std::function<Status(uint16_t)> flush_deferred_;
  WorkloadProfiler* profiler_ = nullptr;
};

}  // namespace fieldrep

#endif  // FIELDREP_QUERY_EXECUTOR_H_
