#include "query/executor.h"

#include <algorithm>

#include "common/strings.h"

namespace fieldrep {

Executor::Executor(Catalog* catalog, SetProvider* sets, IndexManager* indexes,
                   ReplicationManager* replication)
    : catalog_(catalog),
      sets_(sets),
      indexes_(indexes),
      replication_(replication) {}

Status Executor::EnsureOutputFileLocked() {
  if (output_file_id() != kInvalidFileId) return Status::OK();
  FileId file_id;
  FIELDREP_RETURN_IF_ERROR(sets_->CreateAuxFile(&file_id).status());
  restore_output_file_id(file_id);
  return Status::OK();
}

Result<RecordFile*> Executor::OutputFileLocked() {
  FIELDREP_RETURN_IF_ERROR(EnsureOutputFileLocked());
  return sets_->GetAuxFile(output_file_id());
}

Status Executor::EnsureOutputFile() {
  MutexLock lock(output_mu_);
  return EnsureOutputFileLocked();
}

Status Executor::TruncateOutput() {
  MutexLock lock(output_mu_);
  if (output_file_id() == kInvalidFileId) return Status::OK();
  FIELDREP_ASSIGN_OR_RETURN(RecordFile * file,
                            sets_->GetAuxFile(output_file_id()));
  return file->Truncate();
}

Result<RecordFile*> Executor::output_file() {
  MutexLock lock(output_mu_);
  return OutputFileLocked();
}

std::string Executor::EncodeOutputMetadata(FileId* file_id) {
  MutexLock lock(output_mu_);
  *file_id = output_file_id();
  if (*file_id == kInvalidFileId) return std::string();
  auto file = sets_->GetAuxFile(*file_id);
  if (!file.ok()) {
    *file_id = kInvalidFileId;
    return std::string();
  }
  return file.value()->EncodeMetadata();
}

Status Executor::ReadObjectAt(const Oid& oid, Object* object,
                              ObjectSet** set_out) const {
  FIELDREP_ASSIGN_OR_RETURN(const SetInfo* info,
                            catalog_->GetSetForFile(oid.file_id));
  FIELDREP_ASSIGN_OR_RETURN(ObjectSet * set, sets_->GetSet(info->name));
  if (set_out != nullptr) *set_out = set;
  return set->Read(oid, object);
}

Status Executor::PlanColumn(const ObjectSet& set, const std::string& set_name,
                            bool use_replication,
                            const std::string& projection,
                            ColumnPlan* plan) const {
  *plan = ColumnPlan();
  if (projection.find('.') == std::string::npos) {
    int attr = set.type().FindAttribute(projection);
    if (attr < 0) {
      return Status::InvalidArgument("type " + set.type().name() +
                                     " has no attribute " + projection);
    }
    plan->kind = ColumnPlan::Kind::kAttr;
    plan->attr_index = attr;
    return Status::OK();
  }

  std::vector<std::string> parts = SplitString(projection, '.');
  // Bind the component chain against the type graph up front so malformed
  // projections fail regardless of replication coverage.
  std::vector<int> attr_chain(parts.size(), -1);
  std::vector<const TypeDescriptor*> types(parts.size() + 1, nullptr);
  {
    FIELDREP_ASSIGN_OR_RETURN(types[0], catalog_->GetType(set.type().name()));
    for (size_t i = 0; i < parts.size(); ++i) {
      attr_chain[i] = types[i]->FindAttribute(parts[i]);
      if (attr_chain[i] < 0) {
        return Status::InvalidArgument("type " + types[i]->name() +
                                       " has no attribute " + parts[i] +
                                       " (projection " + projection + ")");
      }
      const AttributeDescriptor& attr = types[i]->attribute(attr_chain[i]);
      if (i + 1 < parts.size()) {
        if (!attr.is_ref()) {
          return Status::InvalidArgument(
              "attribute " + parts[i] + " of " + types[i]->name() +
              " is not a reference (projection " + projection + ")");
        }
        FIELDREP_ASSIGN_OR_RETURN(types[i + 1],
                                  catalog_->GetType(attr.ref_type));
      }
    }
  }

  auto replica_plan_for =
      [&](size_t prefix_len) -> const ReplicationPathInfo* {
    // A prefix of length L is covered by the exact path spec or by an
    // `.all` path one component shorter.
    std::string spec = set_name;
    for (size_t i = 0; i < prefix_len; ++i) spec += "." + parts[i];
    if (const ReplicationPathInfo* p = catalog_->FindPathBySpec(spec)) {
      return p;
    }
    if (prefix_len >= 2) {
      std::string all_spec = set_name;
      for (size_t i = 0; i + 1 < prefix_len; ++i) all_spec += "." + parts[i];
      all_spec += ".all";
      if (const ReplicationPathInfo* p = catalog_->FindPathBySpec(all_spec)) {
        return p;
      }
    }
    return nullptr;
  };

  auto position_in_path = [&](const ReplicationPathInfo& path,
                              size_t prefix_len) -> int {
    int terminal_attr = attr_chain[prefix_len - 1];
    for (size_t i = 0; i < path.bound.terminal_fields.size(); ++i) {
      if (path.bound.terminal_fields[i] == terminal_attr) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };

  if (use_replication) {
    // Exact coverage: the whole projection is replicated.
    if (const ReplicationPathInfo* path = replica_plan_for(parts.size())) {
      int pos = position_in_path(*path, parts.size());
      if (pos >= 0) {
        plan->kind = ColumnPlan::Kind::kReplica;
        plan->path = path;
        plan->replica_pos = pos;
        return Status::OK();
      }
    }
    // Longest replicated prefix ending in a ref attribute (Section 3.3.3:
    // a replicated `Emp1.dept.org` collapses `dept.org.name` to one join).
    // Only in-place prefixes give the OID without I/O.
    for (size_t prefix = parts.size() - 1; prefix >= 1; --prefix) {
      const ReplicationPathInfo* path = replica_plan_for(prefix);
      if (path == nullptr ||
          path->strategy != ReplicationStrategy::kInPlace) {
        continue;
      }
      int pos = position_in_path(*path, prefix);
      if (pos < 0) continue;
      plan->kind = ColumnPlan::Kind::kJoin;
      plan->path = path;
      plan->replica_pos = pos;
      plan->hop_attrs.assign(attr_chain.begin() + prefix, attr_chain.end());
      return Status::OK();
    }
  }

  // Pure functional joins.
  plan->kind = ColumnPlan::Kind::kJoin;
  plan->start_attr = attr_chain[0];
  plan->hop_attrs.assign(attr_chain.begin() + 1, attr_chain.end());
  return Status::OK();
}

Result<Value> Executor::EvaluateColumn(const ColumnPlan& plan,
                                       const Object& head) const {
  switch (plan.kind) {
    case ColumnPlan::Kind::kAttr:
      return head.field(plan.attr_index);
    case ColumnPlan::Kind::kReplica: {
      if (plan.path->strategy == ReplicationStrategy::kInPlace) {
        const ReplicaValueSlot* slot = head.FindReplicaValues(plan.path->id);
        if (slot == nullptr ||
            plan.replica_pos >= static_cast<int>(slot->values.size())) {
          return Value::Null();
        }
        return slot->values[plan.replica_pos];
      }
      const ReplicaRefSlot* slot = head.FindReplicaRef(plan.path->id);
      if (slot == nullptr) return Value::Null();
      FIELDREP_ASSIGN_OR_RETURN(
          RecordFile * file, sets_->GetAuxFile(plan.path->replica_set_file));
      std::string payload;
      FIELDREP_RETURN_IF_ERROR(file->Read(slot->replica_oid, &payload));
      ReplicaRecord record;
      FIELDREP_RETURN_IF_ERROR(record.Deserialize(payload));
      if (plan.replica_pos >= static_cast<int>(record.values.size())) {
        return Value::Null();
      }
      return record.values[plan.replica_pos];
    }
    case ColumnPlan::Kind::kJoin: {
      Oid current;
      if (plan.path != nullptr) {
        const ReplicaValueSlot* slot = head.FindReplicaValues(plan.path->id);
        if (slot != nullptr &&
            plan.replica_pos < static_cast<int>(slot->values.size()) &&
            slot->values[plan.replica_pos].is_ref()) {
          current = slot->values[plan.replica_pos].as_ref();
        }
      } else {
        const Value& v = head.field(plan.start_attr);
        if (v.is_ref()) current = v.as_ref();
      }
      Value value = Value::Null();
      for (size_t hop = 0; hop < plan.hop_attrs.size(); ++hop) {
        if (!current.valid()) return Value::Null();
        Object target;
        FIELDREP_RETURN_IF_ERROR(ReadObjectAt(current, &target));
        const Value& v = target.field(plan.hop_attrs[hop]);
        if (hop + 1 == plan.hop_attrs.size()) {
          value = v;
        } else {
          current = v.is_ref() ? v.as_ref() : Oid::Invalid();
        }
      }
      return value;
    }
  }
  return Status::Internal("unreachable");
}

Status Executor::FlushDeferredForPlan(const ColumnPlan& plan) {
  if (plan.path == nullptr || !plan.path->deferred) return Status::OK();
  // Draining a deferred queue mutates pages: route it through the
  // Database, which runs the flush as a locked write transaction on the
  // path's closure (DESIGN.md §14).
  if (flush_deferred_) return flush_deferred_(plan.path->id);
  return replication_->FlushPendingPropagation(plan.path->id);
}

Status Executor::BindClause(const ObjectSet& set, const std::string& set_name,
                            bool use_replication, const Predicate& predicate,
                            BoundClause* clause) const {
  FIELDREP_RETURN_IF_ERROR(PlanColumn(set, set_name, use_replication,
                                      predicate.attr_name, &clause->plan));
  // Locate the attribute descriptor the clause compares against: the
  // terminal attribute of a dotted expression, or the plain attribute.
  if (predicate.attr_name.find('.') == std::string::npos) {
    FIELDREP_ASSIGN_OR_RETURN(clause->predicate,
                              BoundPredicate::Bind(predicate, set.type()));
    return Status::OK();
  }
  std::vector<std::string> parts = SplitString(predicate.attr_name, '.');
  const TypeDescriptor* current;
  FIELDREP_ASSIGN_OR_RETURN(current, catalog_->GetType(set.type().name()));
  for (size_t i = 0; i + 1 < parts.size(); ++i) {
    int attr = current->FindAttribute(parts[i]);
    FIELDREP_ASSIGN_OR_RETURN(
        current, catalog_->GetType(current->attribute(attr).ref_type));
  }
  int terminal_attr = current->FindAttribute(parts.back());
  FIELDREP_ASSIGN_OR_RETURN(
      clause->predicate,
      BoundPredicate::BindToAttribute(
          predicate, current->attribute(terminal_attr), terminal_attr));
  return Status::OK();
}

Status Executor::CollectTargets(ObjectSet* set,
                                const std::optional<Predicate>& predicate,
                                const std::string& set_name,
                                bool use_replication, bool* used_index,
                                bool* needs_recheck,
                                std::optional<BoundClause>* clause,
                                std::vector<Oid>* oids) {
  oids->clear();
  *used_index = false;
  *needs_recheck = false;
  clause->reset();
  if (!predicate.has_value()) {
    FIELDREP_RETURN_IF_ERROR(set->file().ListOids(oids));
    std::sort(oids->begin(), oids->end());
    return Status::OK();
  }
  BoundClause bound;
  FIELDREP_RETURN_IF_ERROR(
      BindClause(*set, set_name, use_replication, *predicate, &bound));
  FIELDREP_RETURN_IF_ERROR(FlushDeferredForPlan(bound.plan));
  const IndexInfo* index_info =
      catalog_->FindIndex(set_name, predicate->attr_name);
  if (index_info != nullptr) {
    FIELDREP_ASSIGN_OR_RETURN(BTree * tree,
                              indexes_->GetIndex(index_info->name));
    int64_t lo, hi;
    bool exact;
    FIELDREP_RETURN_IF_ERROR(bound.predicate.KeyRange(&lo, &hi, &exact));
    FIELDREP_RETURN_IF_ERROR(tree->ScanRange(lo, hi, [&](int64_t, Oid oid) {
      oids->push_back(oid);
      return true;
    }));
    *used_index = true;
    *needs_recheck = !exact;
  } else {
    // No index: scan and filter through the clause's value plan (replica,
    // plain attribute, or per-object path resolution).
    Status eval_status;
    FIELDREP_RETURN_IF_ERROR(
        set->Scan([&](const Oid& oid, const Object& object) {
          Result<Value> value = EvaluateColumn(bound.plan, object);
          if (!value.ok()) {
            eval_status = value.status();
            return false;
          }
          Result<bool> match = bound.predicate.Matches(*value);
          if (!match.ok()) {
            eval_status = match.status();
            return false;
          }
          if (match.value()) oids->push_back(oid);
          return true;
        }));
    FIELDREP_RETURN_IF_ERROR(eval_status);
  }
  std::sort(oids->begin(), oids->end());
  oids->erase(std::unique(oids->begin(), oids->end()), oids->end());
  *clause = std::move(bound);
  return Status::OK();
}

}  // namespace fieldrep
