#ifndef FIELDREP_QUERY_UPDATE_QUERY_H_
#define FIELDREP_QUERY_UPDATE_QUERY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "objects/value.h"
#include "query/predicate.h"

namespace fieldrep {

/// \brief An update query in the shape of the paper's
///
///   replace (S.fields = newvalues, S.repfield = newvalue)
///   where ... some clause on a scalar field S.field_s
///
/// Every assignment flows through the ReplicationManager, so updates to
/// replicated terminal fields propagate (in-place: through the inverted
/// path to each head; separate: to the shared S' record), and updates to
/// reference attributes perform the link surgery of Sections 4.1/5.2.
struct UpdateQuery {
  std::string set_name;
  std::optional<Predicate> predicate;  ///< absent = whole set
  std::vector<std::pair<std::string, Value>> assignments;
};

struct UpdateResult {
  uint64_t objects_updated = 0;
  bool used_index = false;
};

}  // namespace fieldrep

#endif  // FIELDREP_QUERY_UPDATE_QUERY_H_
