#ifndef FIELDREP_QUERY_PREDICATE_H_
#define FIELDREP_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>

#include "catalog/type.h"
#include "common/status.h"
#include "objects/value.h"

namespace fieldrep {

/// Comparison operators supported in query clauses.
enum class CompareOp { kEq, kLt, kLe, kGt, kGe, kBetween };

const char* CompareOpName(CompareOp op);

/// Three-way comparison of two values of compatible kinds
/// (integers widen; strings compare lexicographically after char[] padding;
/// refs compare by packed OID). Returns <0, 0, >0.
Result<int> CompareValues(const Value& a, const Value& b);

/// \brief A single-attribute selection clause, e.g.
/// `where salary between 100000 and 200000` — the shape of the clauses in
/// the cost model's read and update queries (Section 6).
struct Predicate {
  std::string attr_name;
  CompareOp op = CompareOp::kEq;
  Value operand;   ///< right-hand side (lower bound for kBetween)
  Value operand2;  ///< inclusive upper bound for kBetween

  static Predicate Between(std::string attr, Value lo, Value hi) {
    Predicate p;
    p.attr_name = std::move(attr);
    p.op = CompareOp::kBetween;
    p.operand = std::move(lo);
    p.operand2 = std::move(hi);
    return p;
  }
  static Predicate Compare(std::string attr, CompareOp op, Value v) {
    Predicate p;
    p.attr_name = std::move(attr);
    p.op = op;
    p.operand = std::move(v);
    return p;
  }

  std::string ToString() const;
};

/// \brief A predicate bound to a concrete attribute, with operands coerced
/// to the attribute type (so char[n] padding cannot break comparisons).
class BoundPredicate {
 public:
  /// Binds `predicate` against `type` (plain attributes).
  static Result<BoundPredicate> Bind(const Predicate& predicate,
                                     const TypeDescriptor& type);

  /// Binds against an explicit attribute descriptor — used for clauses on
  /// reference paths, where the attribute lives in the terminal type.
  static Result<BoundPredicate> BindToAttribute(
      const Predicate& predicate, const AttributeDescriptor& attr,
      int attr_index);

  int attr_index() const { return attr_index_; }

  /// Evaluates the predicate against an attribute value.
  Result<bool> Matches(const Value& field_value) const;

  /// Computes the inclusive B+ tree key range selected by the predicate.
  /// `exact` is false when index hits must be re-checked against the
  /// actual attribute value (string-prefix keys, or open-ended floats).
  Status KeyRange(int64_t* lo, int64_t* hi, bool* exact) const;

 private:
  int attr_index_ = -1;
  FieldType field_type_ = FieldType::kInt32;
  CompareOp op_ = CompareOp::kEq;
  Value lo_;
  Value hi_;
};

}  // namespace fieldrep

#endif  // FIELDREP_QUERY_PREDICATE_H_
