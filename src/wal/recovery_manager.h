#ifndef FIELDREP_WAL_RECOVERY_MANAGER_H_
#define FIELDREP_WAL_RECOVERY_MANAGER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/storage_device.h"

namespace fieldrep {

/// Outcome of a recovery pass.
struct RecoveryStats {
  bool log_found = false;        ///< A valid log header was present.
  uint64_t epoch = 0;            ///< Epoch of the recovered log.
  uint64_t records_scanned = 0;  ///< Valid records read before the tail.
  uint64_t committed_txns = 0;   ///< Transactions replayed.
  uint64_t skipped_txns = 0;     ///< Transactions without a commit record.
  uint64_t pages_written = 0;    ///< Database pages rewritten by replay.

  std::string ToString() const;
};

/// \brief Replays the committed tail of a write-ahead log onto the
/// database device.
///
/// Runs before the buffer pool exists, directly against the devices.
/// A single forward scan buffers each transaction's page-write records
/// and applies them when (and only when) its commit record is reached —
/// transactions the crash cut short are discarded wholesale, which is
/// what makes a multi-page replica propagation atomic. The scan stops at
/// the first torn, corrupt, or stale-epoch record; everything beyond it
/// is by construction uncommitted.
class RecoveryManager {
 public:
  /// Replays `log_device` onto `db_device` and syncs the result.
  /// Missing or empty logs are not errors (`stats->log_found` reports
  /// which case ran). After this returns the caller should start a fresh
  /// log epoch above `stats->epoch`.
  static Status Recover(StorageDevice* db_device, StorageDevice* log_device,
                        RecoveryStats* stats);
};

}  // namespace fieldrep

#endif  // FIELDREP_WAL_RECOVERY_MANAGER_H_
