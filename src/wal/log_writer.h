#ifndef FIELDREP_WAL_LOG_WRITER_H_
#define FIELDREP_WAL_LOG_WRITER_H_

#include <cstdint>

#include "common/status.h"
#include "storage/storage_device.h"
#include "wal/log_record.h"

namespace fieldrep {

/// \brief Appends log records to a log device.
///
/// Log device layout: page 0 is the log header (magic, current epoch,
/// CRC); pages 1..N hold the record stream of the current epoch, packed
/// back to back. An LSN is the byte offset of a record within the stream
/// (LSN 0 = page 1, byte 0).
///
/// The writer keeps the partial tail page in memory: full pages are
/// written to the device as they fill, and Flush() rewrites the tail page
/// so every appended byte is on the device. Sync() additionally issues a
/// device Sync, after which `durable_lsn()` advances — records at or below
/// it survive a crash.
///
/// Reset(epoch) starts a new epoch: it rewrites the header and moves the
/// append position back to LSN 0. Stale records of earlier epochs are not
/// erased; readers ignore them because every record carries its epoch.
/// This is how the log is logically truncated after a checkpoint without a
/// device-level truncate operation.
class LogWriter {
 public:
  /// \param device log backing store (not owned).
  explicit LogWriter(StorageDevice* device);

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Starts epoch `epoch` at LSN 0: writes and syncs the log header.
  /// Callable only when every prior record is dead (fresh log, after
  /// recovery, or after all dirty pages reached the database device).
  Status Reset(uint64_t epoch);

  /// Appends `record` (the writer stamps the current epoch into it).
  /// On return `*end_lsn` (if non-null) is the LSN one past the record —
  /// the LSN that must become durable for the record to survive a crash.
  Status Append(const LogRecord& record, uint64_t* end_lsn = nullptr);

  /// Writes every appended byte to the device (no sync).
  Status Flush();

  /// Flush + device Sync; advances durable_lsn() to next_lsn().
  Status Sync();

  /// Records that the caller synced the device itself after flushing
  /// through `lsn` (the group-commit leader: Flush under the log lock,
  /// device Sync outside it, then MarkDurable under the lock again).
  /// Advances durable_lsn() monotonically and counts one sync.
  void MarkDurable(uint64_t lsn);

  uint64_t epoch() const { return epoch_; }
  /// LSN of the next byte to be appended.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Every record ending at or below this LSN is crash-durable.
  uint64_t durable_lsn() const { return durable_lsn_; }

  uint64_t page_writes() const { return page_writes_; }
  uint64_t syncs() const { return syncs_; }
  uint64_t records_appended() const { return records_; }

  static constexpr char kHeaderMagic[8] = {'F', 'R', 'W', 'A',
                                           'L', '0', '0', '1'};

 private:
  /// Grows the device until `page_id` exists.
  Status EnsurePage(PageId page_id);
  /// Writes the in-memory tail page at its device position.
  Status WriteTailPage();

  StorageDevice* device_;
  uint64_t epoch_ = 0;
  uint64_t next_lsn_ = 0;
  uint64_t flushed_lsn_ = 0;
  uint64_t durable_lsn_ = 0;
  bool initialized_ = false;
  uint8_t tail_page_[kPageSize];

  uint64_t page_writes_ = 0;
  uint64_t syncs_ = 0;
  uint64_t records_ = 0;
};

}  // namespace fieldrep

#endif  // FIELDREP_WAL_LOG_WRITER_H_
