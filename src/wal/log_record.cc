#include "wal/log_record.h"

#include <array>

#include "common/bytes.h"

namespace fieldrep {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

const char* LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBegin:
      return "Begin";
    case LogRecordType::kCommit:
      return "Commit";
    case LogRecordType::kPageWrite:
      return "PageWrite";
    case LogRecordType::kCheckpoint:
      return "Checkpoint";
  }
  return "Unknown";
}

void LogRecord::AppendTo(std::string* out) const {
  std::string body;
  PutU64(&body, epoch);
  body.push_back(static_cast<char>(type));
  PutU64(&body, txn_id);
  if (type == LogRecordType::kPageWrite) {
    PutU32(&body, page_id);
    PutU32(&body, offset);
    PutU32(&body, static_cast<uint32_t>(bytes.size()));
    body += bytes;
  }
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Crc32(body.data(), body.size()));
  *out += body;
}

bool LogRecord::ParseBody(const uint8_t* body, size_t len, LogRecord* out) {
  ByteReader reader(body, len);
  if (!reader.GetU64(&out->epoch)) return false;
  std::string type_byte;
  if (!reader.GetRaw(1, &type_byte)) return false;
  uint8_t raw_type = static_cast<uint8_t>(type_byte[0]);
  if (raw_type < static_cast<uint8_t>(LogRecordType::kBegin) ||
      raw_type > static_cast<uint8_t>(LogRecordType::kCheckpoint)) {
    return false;
  }
  out->type = static_cast<LogRecordType>(raw_type);
  if (!reader.GetU64(&out->txn_id)) return false;
  out->page_id = 0;
  out->offset = 0;
  out->bytes.clear();
  if (out->type == LogRecordType::kPageWrite) {
    uint32_t length;
    if (!reader.GetU32(&out->page_id) || !reader.GetU32(&out->offset) ||
        !reader.GetU32(&length)) {
      return false;
    }
    if (length > kPageSize || out->offset > kPageSize ||
        out->offset + length > kPageSize) {
      return false;
    }
    if (!reader.GetRaw(length, &out->bytes)) return false;
  }
  return reader.remaining() == 0;
}

size_t LogRecord::WireSize() const {
  size_t body = 8 + 1 + 8;
  if (type == LogRecordType::kPageWrite) body += 12 + bytes.size();
  return 8 + body;  // u32 len + u32 crc + body
}

}  // namespace fieldrep
