#include "wal/log_record.h"

#include "common/bytes.h"

namespace fieldrep {

const char* LogRecordTypeName(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBegin:
      return "Begin";
    case LogRecordType::kCommit:
      return "Commit";
    case LogRecordType::kPageWrite:
      return "PageWrite";
    case LogRecordType::kCheckpoint:
      return "Checkpoint";
  }
  return "Unknown";
}

void LogRecord::AppendTo(std::string* out) const {
  std::string body;
  PutU64(&body, epoch);
  body.push_back(static_cast<char>(type));
  PutU64(&body, txn_id);
  if (type == LogRecordType::kPageWrite) {
    PutU32(&body, page_id);
    PutU32(&body, offset);
    PutU32(&body, static_cast<uint32_t>(bytes.size()));
    body += bytes;
  }
  PutU32(out, static_cast<uint32_t>(body.size()));
  PutU32(out, Crc32(body.data(), body.size()));
  *out += body;
}

bool LogRecord::ParseBody(const uint8_t* body, size_t len, LogRecord* out) {
  ByteReader reader(body, len);
  if (!reader.GetU64(&out->epoch)) return false;
  std::string type_byte;
  if (!reader.GetRaw(1, &type_byte)) return false;
  uint8_t raw_type = static_cast<uint8_t>(type_byte[0]);
  if (raw_type < static_cast<uint8_t>(LogRecordType::kBegin) ||
      raw_type > static_cast<uint8_t>(LogRecordType::kCheckpoint)) {
    return false;
  }
  out->type = static_cast<LogRecordType>(raw_type);
  if (!reader.GetU64(&out->txn_id)) return false;
  out->page_id = 0;
  out->offset = 0;
  out->bytes.clear();
  if (out->type == LogRecordType::kPageWrite) {
    uint32_t length;
    if (!reader.GetU32(&out->page_id) || !reader.GetU32(&out->offset) ||
        !reader.GetU32(&length)) {
      return false;
    }
    if (length > kPageSize || out->offset > kPageSize ||
        out->offset + length > kPageSize) {
      return false;
    }
    if (!reader.GetRaw(length, &out->bytes)) return false;
  }
  return reader.remaining() == 0;
}

size_t LogRecord::WireSize() const {
  size_t body = 8 + 1 + 8;
  if (type == LogRecordType::kPageWrite) body += 12 + bytes.size();
  return 8 + body;  // u32 len + u32 crc + body
}

}  // namespace fieldrep
