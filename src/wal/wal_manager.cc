#include "wal/wal_manager.h"

#include <chrono>
#include <cstring>
#include <vector>

#include "common/strings.h"

namespace fieldrep {

namespace {
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

/// Thread-bound transaction state. `tls_prev` threads the (tiny) stack
/// of managers the current thread holds transactions on — tests open
/// several databases on one thread, and a server worker may run a
/// statement for one database while another's transaction is attached.
struct WalTxn {
  WalManager* mgr = nullptr;
  int depth = 0;
  /// Pre-images of pages first accessed inside the transaction.
  std::unordered_map<PageId, std::string> snapshots;
  /// Pages this transaction dirtied (ordered: deterministic log layout).
  std::set<PageId> dirty;
  WalTxn* tls_prev = nullptr;
};

namespace {
thread_local WalTxn* tls_txn_head = nullptr;

void TlsPush(WalTxn* t) {
  t->tls_prev = tls_txn_head;
  tls_txn_head = t;
}

void TlsUnlink(WalTxn* t) {
  WalTxn** p = &tls_txn_head;
  while (*p != nullptr && *p != t) p = &(*p)->tls_prev;
  if (*p == t) {
    *p = t->tls_prev;
    t->tls_prev = nullptr;
  }
}
}  // namespace

std::string WalStats::ToString() const {
  return StringPrintf(
      "WalStats{txns=%llu empty=%llu records=%llu delta_bytes=%llu "
      "log_writes=%llu log_syncs=%llu checkpoints=%llu ckpt_pages=%llu "
      "group_batches=%llu group_commits=%llu}",
      static_cast<unsigned long long>(transactions),
      static_cast<unsigned long long>(empty_commits),
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(delta_bytes),
      static_cast<unsigned long long>(log_page_writes),
      static_cast<unsigned long long>(log_syncs),
      static_cast<unsigned long long>(checkpoints),
      static_cast<unsigned long long>(checkpoint_pages),
      static_cast<unsigned long long>(group_batches),
      static_cast<unsigned long long>(group_commits));
}

WalManager::WalManager(StorageDevice* log_device, BufferPool* pool,
                       const Options& options)
    : log_device_(log_device),
      pool_(pool),
      writer_(log_device),
      options_(options) {}

Status WalManager::Initialize(uint64_t epoch) {
  MutexLock lock(log_mu_);
  return writer_.Reset(epoch);
}

WalTxn* WalManager::CurrentTxn() const {
  for (WalTxn* t = tls_txn_head; t != nullptr; t = t->tls_prev) {
    if (t->mgr == this) return t;
  }
  return nullptr;
}

bool WalManager::in_transaction() const { return CurrentTxn() != nullptr; }

Status WalManager::BeginTransaction() {
  if (broken()) {
    return Status::FailedPrecondition(
        "write-ahead log is in a failed state; reopen the database");
  }
  WalTxn* t = CurrentTxn();
  if (t != nullptr) {
    ++t->depth;
    return Status::OK();
  }
  t = new WalTxn;
  t->mgr = this;
  t->depth = 1;
  TlsPush(t);
  active_txns_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

WalTxn* WalManager::DetachTransaction() {
  WalTxn* t = CurrentTxn();
  if (t == nullptr) return nullptr;
  TlsUnlink(t);
  return t;
}

void WalManager::AttachTransaction(WalTxn* txn) {
  if (txn == nullptr) return;
  TlsPush(txn);
}

void WalManager::FinishTxn(WalTxn* txn, bool keep_protected) {
  if (!keep_protected) {
    MutexLock lock(state_mu_);
    for (PageId page_id : txn->dirty) {
      auto it = protected_.find(page_id);
      if (it != protected_.end() && --it->second == 0) protected_.erase(it);
    }
  }
  TlsUnlink(txn);
  delete txn;
  active_txns_.fetch_sub(1, std::memory_order_acq_rel);
}

Status WalManager::CommitTransaction(uint64_t* commit_lsn) {
  if (commit_lsn != nullptr) *commit_lsn = 0;
  WalTxn* t = CurrentTxn();
  if (t == nullptr) {
    return Status::FailedPrecondition("commit without matching begin");
  }
  if (t->depth > 1) {
    --t->depth;
    return Status::OK();
  }
  const uint64_t start_ns = NowNs();
  Status s = CommitTopLevel(t, commit_lsn);
  commit_latency_ns_.Observe(NowNs() - start_ns);
  // On failure the log is broken: the transaction's pages stay in the
  // frozen protection set forever so no partially-logged byte can reach
  // the device.
  FinishTxn(t, /*keep_protected=*/!s.ok());
  return s;
}

Status WalManager::AbortTransaction() {
  WalTxn* t = CurrentTxn();
  if (t == nullptr) {
    return Status::FailedPrecondition("abort without matching begin");
  }
  if (--t->depth > 0) return Status::OK();
  // Redo-only log: the in-memory partial effects stay (exactly the
  // pre-WAL failure behaviour), but none of them were logged, so a
  // crash-and-recover still lands on the last committed state. Once
  // broken, the protection set stays frozen.
  FinishTxn(t, /*keep_protected=*/broken());
  return Status::OK();
}

Status WalManager::CommitTopLevel(WalTxn* txn, uint64_t* commit_lsn) {
  // One commit at a time, end to end: the precommit hook's metadata
  // image, the page diffs, and the page-LSN stamps must not interleave
  // with another commit touching the same meta pages.
  MutexLock commit_lock(commit_mu_);
  if (broken()) {
    return Status::FailedPrecondition(
        "write-ahead log is in a failed state; reopen the database");
  }
  if (precommit_hook_) {
    Status s = precommit_hook_();
    if (!s.ok()) return s;
  }

  // The hook may have dirtied meta pages into this transaction; collect
  // the write set only now. The set is thread-owned — no lock needed.
  std::vector<PageId> dirty_pages(txn->dirty.begin(), txn->dirty.end());

  // Diff every dirtied page against its pre-image. Absolute byte ranges
  // replayed in log order are idempotent, so recovery needs no page LSNs
  // on the device.
  struct Delta {
    PageId page_id;
    uint32_t offset;
    const uint8_t* data;
    uint32_t length;
  };
  std::vector<Delta> deltas;
  deltas.reserve(dirty_pages.size());
  for (PageId page_id : dirty_pages) {
    const uint8_t* cur = pool_->PeekPage(page_id);
    if (cur == nullptr) {
      // No-steal (CanEvict) keeps every transaction page resident; a miss
      // here means the invariant broke.
      broken_.store(true, std::memory_order_relaxed);
      return Status::Internal(
          StringPrintf("transaction page %u left the buffer pool before "
                       "commit",
                       page_id));
    }
    auto snap_it = txn->snapshots.find(page_id);
    if (snap_it == txn->snapshots.end()) {
      // Page was never observed before the first write (freshly allocated
      // inside the transaction): log the whole page.
      deltas.push_back(Delta{page_id, 0, cur, kPageSize});
      continue;
    }
    const uint8_t* old =
        reinterpret_cast<const uint8_t*>(snap_it->second.data());
    uint32_t first = 0;
    while (first < kPageSize && cur[first] == old[first]) ++first;
    if (first == kPageSize) continue;  // Dirtied but byte-identical.
    uint32_t last = kPageSize;
    while (last > first && cur[last - 1] == old[last - 1]) --last;
    deltas.push_back(Delta{page_id, first, cur + first, last - first});
  }

  if (deltas.empty()) {
    MutexLock lock(log_mu_);
    ++stats_.empty_commits;
    return Status::OK();
  }

  const uint64_t txn_id = next_txn_id_++;
  uint64_t end_lsn = 0;
  Status s;
  {
    // Appends and the commit sync run under log_mu_ because an evicting
    // reader may concurrently sync through BeforePageFlush. The delta
    // byte pointers stay valid: the pages are pinned against eviction by
    // the no-steal veto, and the 2PL layer keeps other writers off them.
    MutexLock lock(log_mu_);
    LogRecord rec;
    rec.txn_id = txn_id;
    rec.type = LogRecordType::kBegin;
    s = writer_.Append(rec);
    if (s.ok()) {
      for (const Delta& d : deltas) {
        LogRecord w;
        w.type = LogRecordType::kPageWrite;
        w.txn_id = txn_id;
        w.page_id = d.page_id;
        w.offset = d.offset;
        w.bytes.assign(reinterpret_cast<const char*>(d.data), d.length);
        s = writer_.Append(w);
        if (!s.ok()) break;
        stats_.delta_bytes += d.length;
      }
    }
    if (s.ok()) {
      LogRecord commit;
      commit.type = LogRecordType::kCommit;
      commit.txn_id = txn_id;
      s = writer_.Append(commit, &end_lsn);
    }
    if (s.ok()) {
      // Group-commit mode never syncs inline: the committer flushes and
      // then amortizes durability through WaitDurable with its peers.
      const bool sync_now =
          options_.sync_on_commit && !options_.group_commit;
      s = sync_now ? writer_.Sync() : writer_.Flush();
    }
    if (s.ok()) {
      ++stats_.transactions;
      stats_.records += 2 + deltas.size();
      stats_.log_page_writes = writer_.page_writes();
      stats_.log_syncs = writer_.syncs();
    }
  }
  if (!s.ok()) {
    // The log device failed mid-commit. The transaction's pages must
    // never reach the database device now (their deltas may be only
    // partially logged), so freeze the protection set and refuse all
    // further work.
    broken_.store(true, std::memory_order_relaxed);
    return s;
  }

  last_commit_lsn_.store(end_lsn, std::memory_order_release);
  if (commit_lsn != nullptr) *commit_lsn = end_lsn;

  // Stamp the commit record's end LSN onto every changed page: the flush
  // invariant (BeforePageFlush) then guarantees no page overtakes its
  // commit record onto the device, even in group-commit mode. Done
  // outside log_mu_ — SetPageLsn takes a shard lock.
  for (const Delta& d : deltas) pool_->SetPageLsn(d.page_id, end_lsn);
  return Status::OK();
}

Status WalManager::WaitDurable(uint64_t lsn) {
  if (lsn == 0) return Status::OK();
  UniqueMutexLock glock(group_mu_);
  for (;;) {
    // Lock order group_mu_ -> log_mu_ (durable_lsn() takes log_mu_);
    // nothing takes them the other way around.
    if (durable_lsn() >= lsn) return Status::OK();
    if (broken()) {
      return Status::FailedPrecondition(
          "write-ahead log is in a failed state; reopen the database");
    }
    if (group_leader_active_) {
      // Follower: the in-flight sync (or the next one) will cover us.
      ++group_waiters_;
      group_cv_.wait(glock);
      --group_waiters_;
      continue;
    }
    // Leader. Everyone parked right now commits with one device sync;
    // sessions that append during the sync form the next batch.
    group_leader_active_ = true;
    const uint64_t batch = 1 + group_waiters_;
    glock.unlock();

    uint64_t target = 0;
    Status s;
    {
      MutexLock lock(log_mu_);
      s = writer_.Flush();
      target = writer_.next_lsn();
    }
    const uint64_t sync_start_ns = NowNs();
    if (s.ok()) s = log_device_->Sync();
    if (s.ok()) {
      group_sync_ns_.Observe(NowNs() - sync_start_ns);
      group_batch_size_.Observe(batch);
      MutexLock lock(log_mu_);
      writer_.MarkDurable(target);
      stats_.log_syncs = writer_.syncs();
      stats_.log_page_writes = writer_.page_writes();
      ++stats_.group_batches;
      stats_.group_commits += batch;
    } else {
      broken_.store(true, std::memory_order_relaxed);
    }

    glock.lock();
    group_leader_active_ = false;
    group_cv_.notify_all();
    if (!s.ok()) return s;
  }
}

Status WalManager::Checkpoint() {
  const uint64_t start_ns = NowNs();
  Status s = CheckpointImpl();
  if (s.ok()) checkpoint_ns_.Observe(NowNs() - start_ns);
  return s;
}

Status WalManager::CheckpointImpl() {
  if (active_transactions() > 0) {
    // No-steal makes this a hard requirement, not a courtesy: FlushAll
    // below would write every dirty page, including pages carrying some
    // live transaction's uncommitted bytes. The database guarantees
    // quiescence by holding the schema lock exclusively.
    return Status::FailedPrecondition("checkpoint with live transactions");
  }
  if (broken()) {
    return Status::FailedPrecondition(
        "write-ahead log is in a failed state; reopen the database");
  }
  // Make every committed record durable before its pages can be flushed
  // (group-commit mode may still hold records in memory).
  {
    MutexLock lock(log_mu_);
    Status s = writer_.Sync();
    if (!s.ok()) {
      broken_.store(true, std::memory_order_relaxed);
      return s;
    }
  }
  // log_mu_ must be released here: FlushAll re-enters this manager
  // through BeforePageFlush, which takes it again.
  size_t dirty = pool_->DirtyPageIds().size();
  FIELDREP_RETURN_IF_ERROR(pool_->FlushAll());
  FIELDREP_RETURN_IF_ERROR(pool_->SyncDevice());
  // Every logged effect is now on the database device: the log content is
  // dead. Start the next epoch, which logically truncates it.
  MutexLock lock(log_mu_);
  FIELDREP_RETURN_IF_ERROR(writer_.Reset(writer_.epoch() + 1));
  ++stats_.checkpoints;
  stats_.checkpoint_pages += dirty;
  stats_.log_page_writes = writer_.page_writes();
  stats_.log_syncs = writer_.syncs();
  return Status::OK();
}

void WalManager::CollectMetrics(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  const WalStats ws = stats();
  add("fieldrep_wal_transactions_total", "Committed transactions.",
      MetricKind::kCounter, static_cast<double>(ws.transactions));
  add("fieldrep_wal_empty_commits_total",
      "Commits that changed no page bytes.", MetricKind::kCounter,
      static_cast<double>(ws.empty_commits));
  add("fieldrep_wal_records_total", "Log records appended.",
      MetricKind::kCounter, static_cast<double>(ws.records));
  add("fieldrep_wal_delta_bytes_total",
      "Payload bytes of page-write records.", MetricKind::kCounter,
      static_cast<double>(ws.delta_bytes));
  add("fieldrep_wal_log_page_writes_total",
      "Pages written to the log device.", MetricKind::kCounter,
      static_cast<double>(ws.log_page_writes));
  add("fieldrep_wal_log_syncs_total", "Sync calls on the log device.",
      MetricKind::kCounter, static_cast<double>(ws.log_syncs));
  add("fieldrep_wal_checkpoints_total", "Completed checkpoints.",
      MetricKind::kCounter, static_cast<double>(ws.checkpoints));
  add("fieldrep_wal_checkpoint_pages_total",
      "Dirty pages flushed by checkpoints.", MetricKind::kCounter,
      static_cast<double>(ws.checkpoint_pages));
  add("fieldrep_wal_group_batches_total",
      "Group-commit sync batches (leader syncs).", MetricKind::kCounter,
      static_cast<double>(ws.group_batches));
  add("fieldrep_wal_group_batched_commits_total",
      "Commits made durable by group-commit batches.", MetricKind::kCounter,
      static_cast<double>(ws.group_commits));
  add("fieldrep_wal_log_bytes", "Bytes in the current log epoch.",
      MetricKind::kGauge, static_cast<double>(log_bytes()));
  add("fieldrep_wal_active_transactions",
      "Write transactions currently open (including detached sessions).",
      MetricKind::kGauge, static_cast<double>(active_transactions()));
  add("fieldrep_wal_broken", "1 when the log is in a failed state.",
      MetricKind::kGauge, broken() ? 1.0 : 0.0);
  MetricSample commit;
  commit.name = "fieldrep_wal_commit_latency_ns";
  commit.help = "Top-level commit latency (append + sync), nanoseconds.";
  commit.kind = MetricKind::kHistogram;
  commit.histogram = commit_latency_ns_.TakeSnapshot();
  out->push_back(std::move(commit));
  MetricSample ckpt;
  ckpt.name = "fieldrep_wal_checkpoint_duration_ns";
  ckpt.help = "Successful checkpoint duration, nanoseconds.";
  ckpt.kind = MetricKind::kHistogram;
  ckpt.histogram = checkpoint_ns_.TakeSnapshot();
  out->push_back(std::move(ckpt));
  MetricSample batch;
  batch.name = "fieldrep_wal_group_batch_size";
  batch.help = "Commits released per group-commit leader sync.";
  batch.kind = MetricKind::kHistogram;
  batch.histogram = group_batch_size_.TakeSnapshot();
  out->push_back(std::move(batch));
  MetricSample gsync;
  gsync.name = "fieldrep_wal_group_sync_ns";
  gsync.help = "Group-commit leader sync latency, nanoseconds.";
  gsync.kind = MetricKind::kHistogram;
  gsync.histogram = group_sync_ns_.TakeSnapshot();
  out->push_back(std::move(gsync));
}

void WalManager::OnPageAccess(PageId page_id, const uint8_t* data) {
  // Fires only for exclusive fetches, i.e. on a thread that is writing —
  // which, under 2PL, is a thread with an open transaction (or none, for
  // maintenance paths that bypass transactions entirely).
  WalTxn* t = CurrentTxn();
  if (t == nullptr || broken()) return;
  if (t->snapshots.count(page_id) != 0) return;
  // Only pages the transaction later dirties need their pre-image, but
  // we cannot know which those are yet; the map dies with the
  // transaction so the cost is bounded by its working set.
  t->snapshots.emplace(page_id,
                       std::string(reinterpret_cast<const char*>(data),
                                   kPageSize));
}

void WalManager::OnPageDirtied(PageId page_id) {
  WalTxn* t = CurrentTxn();
  if (t == nullptr || broken()) return;
  if (t->dirty.insert(page_id).second) {
    MutexLock lock(state_mu_);
    ++protected_[page_id];
  }
}

bool WalManager::CanEvict(PageId page_id) const {
  // No-steal: pages carrying uncommitted (or unloggable, once broken)
  // transaction writes must not reach the device. Called from any thread
  // that considers evicting a dirty page.
  MutexLock lock(state_mu_);
  return protected_.count(page_id) == 0;
}

Status WalManager::BeforePageFlush(PageId /*page_id*/, uint64_t page_lsn) {
  MutexLock lock(log_mu_);
  if (page_lsn == 0 || page_lsn <= writer_.durable_lsn()) {
    return Status::OK();
  }
  // Write-ahead rule: the log must be durable through this page's last
  // commit record before the page itself may be written.
  Status s = writer_.Sync();
  if (!s.ok()) broken_.store(true, std::memory_order_relaxed);
  stats_.log_syncs = writer_.syncs();
  stats_.log_page_writes = writer_.page_writes();
  return s;
}

WalTransaction::WalTransaction(WalManager* wal) : wal_(wal) {
  if (wal_ == nullptr) return;
  begin_status_ = wal_->BeginTransaction();
  active_ = begin_status_.ok();
}

WalTransaction::~WalTransaction() {
  if (active_) wal_->AbortTransaction().ok();
}

Status WalTransaction::Commit(uint64_t* commit_lsn) {
  if (!active_) return Status::OK();
  active_ = false;
  return wal_->CommitTransaction(commit_lsn);
}

}  // namespace fieldrep
