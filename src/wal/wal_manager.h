#ifndef FIELDREP_WAL_WAL_MANAGER_H_
#define FIELDREP_WAL_WAL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "telemetry/metrics.h"
#include "wal/log_writer.h"

namespace fieldrep {

/// Counters describing write-ahead-log activity.
struct WalStats {
  uint64_t transactions = 0;     ///< Committed transactions.
  uint64_t empty_commits = 0;    ///< Commits that changed no page bytes.
  uint64_t records = 0;          ///< Log records appended.
  uint64_t delta_bytes = 0;      ///< Payload bytes of page-write records.
  uint64_t log_page_writes = 0;  ///< Pages written to the log device.
  uint64_t log_syncs = 0;        ///< Sync calls on the log device.
  uint64_t checkpoints = 0;      ///< Completed checkpoints.
  uint64_t checkpoint_pages = 0; ///< Dirty pages flushed by checkpoints.
  uint64_t group_batches = 0;    ///< Group-commit sync batches (leader syncs).
  uint64_t group_commits = 0;    ///< Commits made durable by those batches.

  std::string ToString() const;
};

/// One in-flight transaction's private WAL state. Lives on the thread
/// running the transaction (a linked stack threaded through `tls_prev`,
/// one node per manager), or detached between a network session's
/// statements. Opaque outside the manager.
struct WalTxn;

/// \brief The durability engine: redo-only write-ahead logging with
/// no-steal buffering and epoch-based log truncation.
///
/// One logical mutation (an object update plus its entire replica
/// propagation along the inverted path, Section 4.2 of the paper) runs
/// inside a transaction bracket. While the transaction is open the
/// manager, hooked into the BufferPool as its PageObserver,
///
///   - snapshots each page's pre-image on first access,
///   - tracks the set of pages the mutation dirtied, and
///   - vetoes eviction of those pages (no-steal: uncommitted bytes never
///     reach the device).
///
/// At commit it writes a Begin record, one physiological redo record per
/// changed byte range (computed by diffing each dirtied page against its
/// snapshot), and a Commit record, then (by default) syncs the log. Only
/// after the log is durable may the pages themselves be flushed — the
/// flush-ordering invariant, enforced through BeforePageFlush and the
/// per-frame page LSN. Recovery replays exactly the committed
/// transactions, so a crash anywhere inside a propagation yields either
/// the fully-old or fully-new replica state.
///
/// Checkpointing is driven by the pool's dirty-frame table: flush the
/// dirty pages (their log records are already durable), sync the
/// database device, then start a fresh log epoch — which logically
/// truncates the log without a device truncate.
///
/// Concurrency (DESIGN.md §14): any number of write transactions may be
/// open at once, one per thread (network sessions carry theirs across
/// worker threads via Detach/AttachTransaction). A transaction's
/// snapshots and dirty set live in its thread-bound WalTxn, untouched by
/// other threads; the per-set 2PL layer above guarantees two live
/// transactions never write the same data page. Shared state is small
/// and explicitly locked: the no-steal protection set (`protected_`,
/// refcounts under `state_mu_` — reachable from any evicting thread),
/// the log writer and stats under `log_mu_`, and `commit_mu_`, which
/// serializes top-level commits end to end so each commit's metadata
/// snapshot (precommit hook), page diffs, and page-LSN stamps are
/// mutually consistent. Neither state_mu_ nor log_mu_ is ever held
/// across a call into the buffer pool.
class WalManager : public PageObserver {
 public:
  struct Options {
    /// Sync the log on every commit. When false, records stay buffered
    /// until a page flush forces them out; a crash may lose recently
    /// committed transactions but never atomicity.
    bool sync_on_commit = true;
    /// True group commit: commits only flush the log; durability comes
    /// from WaitDurable, where concurrent committers batch behind one
    /// leader sync (K commits -> 1 fdatasync). Overrides the per-commit
    /// sync of `sync_on_commit`.
    bool group_commit = false;
    /// Log size past which the database should checkpoint (0 = never).
    /// The manager only reports the condition (needs_auto_checkpoint);
    /// the database acts on it once the transaction's locks are
    /// released, because a checkpoint must not run while any other
    /// transaction is live (no-steal: FlushAll would write their
    /// uncommitted pages).
    uint64_t checkpoint_threshold_bytes = 0;
  };

  /// \param log_device backing store of the log (not owned).
  /// \param pool the buffer pool this manager observes (not owned).
  WalManager(StorageDevice* log_device, BufferPool* pool,
             const Options& options);

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Starts the first epoch of this process lifetime. `epoch` must exceed
  /// every epoch already on the log device (recovery reports the old one).
  Status Initialize(uint64_t epoch);

  /// Hook run inside commit (under commit_mu_), before deltas are
  /// computed. The database uses it to write its catalog/metadata state
  /// into the checkpoint pages so that every commit is self-describing
  /// after replay.
  void set_precommit_hook(std::function<Status()> hook) {
    precommit_hook_ = std::move(hook);
  }

  // --- Transactions (flat nesting, one per thread) ---------------------------

  /// Opens a transaction on this thread (or deepens the one already
  /// open). Fails fast once the log is broken.
  Status BeginTransaction();
  /// Logs and (optionally) syncs the outermost transaction's deltas.
  /// `commit_lsn`, when non-null, receives the commit record's end LSN
  /// (0 for nested or empty commits) — the value to pass to WaitDurable.
  /// On a log-device failure the manager enters a broken state: the
  /// affected pages stay pinned in memory forever and every later
  /// transaction fails fast, so no uncommitted byte can reach the device.
  Status CommitTransaction(uint64_t* commit_lsn = nullptr);
  /// Discards the transaction bracket. Redo-only logging has no undo:
  /// in-memory partial effects of a failed mutation remain (as before
  /// this subsystem existed); the log simply never commits them, so a
  /// crash still recovers to the last committed state.
  Status AbortTransaction();
  /// Whether the *current thread* has an open transaction on this
  /// manager.
  bool in_transaction() const;
  /// Number of live transactions across all threads (including detached
  /// session transactions).
  int active_transactions() const {
    return active_txns_.load(std::memory_order_acquire);
  }

  /// Unbinds the current thread's open transaction so another thread can
  /// continue it (network sessions migrate across workers between
  /// statements). Returns null when no transaction is open. The handle
  /// stays owned by the manager; hand it back via AttachTransaction or
  /// the transaction leaks its no-steal protections.
  WalTxn* DetachTransaction();
  /// Rebinds a detached transaction to the current thread.
  void AttachTransaction(WalTxn* txn);

  // --- Group commit -----------------------------------------------------------

  /// Blocks until the log is durable through `lsn` (0 returns at once).
  /// In group-commit mode this is where the fsync amortization happens:
  /// the first arriving session becomes the batch leader, snapshots the
  /// flushed tail, performs one device sync *outside* `log_mu_` (so
  /// concurrent commits keep appending and join the next batch), marks
  /// the snapshot durable, and wakes every follower whose commit LSN the
  /// sync covered. Safe from any thread; also correct (one sync, batch of
  /// one) when called without group_commit enabled.
  Status WaitDurable(uint64_t lsn);

  /// End LSN of the most recent top-level commit (by any thread) that
  /// logged deltas. Under concurrency prefer the `commit_lsn` out-param
  /// of the commit that actually did the work.
  uint64_t last_commit_lsn() const {
    return last_commit_lsn_.load(std::memory_order_acquire);
  }
  bool group_commit_enabled() const { return options_.group_commit; }

  // --- Checkpoint ------------------------------------------------------------

  /// Flushes the pool's dirty frames, syncs the database device, and
  /// begins a fresh log epoch. Refused while any transaction is live
  /// anywhere (no-steal); the database quiesces writers first by taking
  /// the schema lock exclusively.
  Status Checkpoint();

  /// True when the log has outgrown Options::checkpoint_threshold_bytes.
  /// The database polls this after releasing a committed transaction's
  /// locks and checkpoints from a quiesced context.
  bool needs_auto_checkpoint() const {
    return options_.checkpoint_threshold_bytes != 0 &&
           log_bytes() > options_.checkpoint_threshold_bytes;
  }

  // --- Introspection ---------------------------------------------------------

  WalStats stats() const {
    MutexLock lock(log_mu_);
    return stats_;
  }
  uint64_t epoch() const {
    MutexLock lock(log_mu_);
    return writer_.epoch();
  }
  uint64_t durable_lsn() const {
    MutexLock lock(log_mu_);
    return writer_.durable_lsn();
  }
  uint64_t log_bytes() const {
    MutexLock lock(log_mu_);
    return writer_.next_lsn();
  }
  bool broken() const { return broken_.load(std::memory_order_relaxed); }

  /// Top-level commit latency distribution (Observe'd around
  /// CommitTopLevel, including the commit sync).
  Histogram::Snapshot commit_latency() const {
    return commit_latency_ns_.TakeSnapshot();
  }

  /// Appends this manager's metric samples (WalStats counters, log size
  /// and broken gauges, commit-latency and checkpoint-duration
  /// histograms) to `out`.
  void CollectMetrics(std::vector<MetricSample>* out) const;

  // --- PageObserver ----------------------------------------------------------

  void OnPageAccess(PageId page_id, const uint8_t* data) override;
  void OnPageDirtied(PageId page_id) override;
  bool CanEvict(PageId page_id) const override;
  Status BeforePageFlush(PageId page_id, uint64_t page_lsn) override;

 private:
  /// The current thread's open transaction on *this* manager (threads
  /// may hold transactions on several managers at once — tests open
  /// multiple databases).
  WalTxn* CurrentTxn() const;
  Status CommitTopLevel(WalTxn* txn, uint64_t* commit_lsn);
  /// Drops `txn`'s no-steal protections (skipped once broken: the
  /// protection set is frozen so unloggable bytes stay off the device)
  /// and frees it.
  void FinishTxn(WalTxn* txn, bool keep_protected);
  Status CheckpointImpl();

  StorageDevice* log_device_;
  BufferPool* pool_;
  LogWriter writer_ GUARDED_BY(log_mu_);
  Options options_;
  std::function<Status()> precommit_hook_;

  std::atomic<int> active_txns_{0};
  std::atomic<bool> broken_{false};

  /// Serializes top-level commits end to end: precommit hook, page
  /// diffing, log append, and page-LSN stamping happen atomically with
  /// respect to other commits, so the metadata image each commit embeds
  /// reflects exactly the commits before it. Rank sits below every
  /// storage/log lock the commit path acquires.
  Mutex commit_mu_{LockRank::kWalCommit, "wal.commit_mu"};
  /// Commit ids in log order; assigned under commit_mu_.
  uint64_t next_txn_id_ GUARDED_BY(commit_mu_) = 1;

  /// Guards the no-steal protection set: pages dirtied by any live
  /// transaction, refcounted because meta pages recur across
  /// transactions. Read by CanEvict from any thread that evicts a dirty
  /// page. kWalState is the deepest engine rank a pool walk reaches
  /// (victim → shard → state).
  mutable Mutex state_mu_{LockRank::kWalState, "wal.state_mu"};
  std::map<PageId, int> protected_ GUARDED_BY(state_mu_);

  /// Guards writer_ and stats_: commits and checkpoints append while
  /// BeforePageFlush may sync from any evicting thread. Never held
  /// across a call into the buffer pool.
  mutable Mutex log_mu_{LockRank::kWalLog, "wal.log_mu"};
  WalStats stats_ GUARDED_BY(log_mu_);

  /// Group-commit coordinator state. Lock order (enforced by LockRank):
  /// group_mu_ before log_mu_ (WaitDurable holds group_mu_ only around
  /// leader election and follower waits, never across the device sync
  /// itself).
  Mutex group_mu_{LockRank::kWalGroup, "wal.group_mu"};
  CondVar group_cv_;
  bool group_leader_active_ GUARDED_BY(group_mu_) = false;
  uint64_t group_waiters_ GUARDED_BY(group_mu_) = 0;
  std::atomic<uint64_t> last_commit_lsn_{0};

  /// Always-on latency instruments: relaxed atomics, so Observe is noise
  /// next to the log append/sync it brackets.
  Histogram commit_latency_ns_{Histogram::LatencyBoundsNs()};
  Histogram checkpoint_ns_{Histogram::LatencyBoundsNs()};
  /// Commits released per leader sync (the amortization factor).
  Histogram group_batch_size_{
      std::vector<uint64_t>{1, 2, 4, 8, 16, 32, 64, 128, 256}};
  Histogram group_sync_ns_{Histogram::LatencyBoundsNs()};
};

/// \brief RAII transaction bracket.
///
/// Begins a (possibly nested) transaction on construction; the destructor
/// aborts unless Commit() ran. A null manager makes every operation a
/// no-op, so call sites need not test whether WAL is enabled.
class WalTransaction {
 public:
  explicit WalTransaction(WalManager* wal);
  ~WalTransaction();

  WalTransaction(const WalTransaction&) = delete;
  WalTransaction& operator=(const WalTransaction&) = delete;

  /// Status of the BeginTransaction call; check before doing work.
  const Status& begin_status() const { return begin_status_; }
  Status Commit(uint64_t* commit_lsn = nullptr);

 private:
  WalManager* wal_;
  bool active_ = false;
  Status begin_status_;
};

}  // namespace fieldrep

#endif  // FIELDREP_WAL_WAL_MANAGER_H_
