#ifndef FIELDREP_WAL_WAL_MANAGER_H_
#define FIELDREP_WAL_WAL_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "common/annotated_mutex.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "telemetry/metrics.h"
#include "wal/log_writer.h"

namespace fieldrep {

/// Counters describing write-ahead-log activity.
struct WalStats {
  uint64_t transactions = 0;     ///< Committed transactions.
  uint64_t empty_commits = 0;    ///< Commits that changed no page bytes.
  uint64_t records = 0;          ///< Log records appended.
  uint64_t delta_bytes = 0;      ///< Payload bytes of page-write records.
  uint64_t log_page_writes = 0;  ///< Pages written to the log device.
  uint64_t log_syncs = 0;        ///< Sync calls on the log device.
  uint64_t checkpoints = 0;      ///< Completed checkpoints.
  uint64_t checkpoint_pages = 0; ///< Dirty pages flushed by checkpoints.
  uint64_t group_batches = 0;    ///< Group-commit sync batches (leader syncs).
  uint64_t group_commits = 0;    ///< Commits made durable by those batches.

  std::string ToString() const;
};

/// \brief The durability engine: redo-only write-ahead logging with
/// no-steal buffering and epoch-based log truncation.
///
/// One logical mutation (an object update plus its entire replica
/// propagation along the inverted path, Section 4.2 of the paper) runs
/// inside a transaction bracket. While the transaction is open the
/// manager, hooked into the BufferPool as its PageObserver,
///
///   - snapshots each page's pre-image on first access,
///   - tracks the set of pages the mutation dirtied, and
///   - vetoes eviction of those pages (no-steal: uncommitted bytes never
///     reach the device).
///
/// At commit it writes a Begin record, one physiological redo record per
/// changed byte range (computed by diffing each dirtied page against its
/// snapshot), and a Commit record, then (by default) syncs the log. Only
/// after the log is durable may the pages themselves be flushed — the
/// flush-ordering invariant, enforced through BeforePageFlush and the
/// per-frame page LSN. Recovery replays exactly the committed
/// transactions, so a crash anywhere inside a propagation yields either
/// the fully-old or fully-new replica state.
///
/// Checkpointing is driven by the pool's dirty-frame table: flush the
/// dirty pages (their log records are already durable), sync the
/// database device, then start a fresh log epoch — which logically
/// truncates the log without a device truncate.
///
/// Concurrency (DESIGN.md §10): transactions begin, mutate, and commit
/// only on the engine's single writer thread, so `txn_depth_`,
/// `snapshots_`, and `next_txn_id_` need no locking (OnPageAccess fires
/// only for exclusive fetches — the writer). What reader threads *can*
/// reach is eviction of dirty pages: CanEvict and BeforePageFlush run on
/// whichever thread takes a buffer miss, so the transaction write set is
/// guarded by `state_mu_` and the log writer plus its stats by `log_mu_`.
/// Neither mutex is ever held across a call into the buffer pool.
class WalManager : public PageObserver {
 public:
  struct Options {
    /// Sync the log on every commit. When false, records stay buffered
    /// until a page flush forces them out; a crash may lose recently
    /// committed transactions but never atomicity.
    bool sync_on_commit = true;
    /// True group commit: commits only flush the log; durability comes
    /// from WaitDurable, where concurrent committers batch behind one
    /// leader sync (K commits -> 1 fdatasync). Overrides the per-commit
    /// sync of `sync_on_commit`.
    bool group_commit = false;
    /// Auto-checkpoint when the log grows past this many bytes at the end
    /// of a commit (0 = never).
    uint64_t checkpoint_threshold_bytes = 0;
  };

  /// \param log_device backing store of the log (not owned).
  /// \param pool the buffer pool this manager observes (not owned).
  WalManager(StorageDevice* log_device, BufferPool* pool,
             const Options& options);

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Starts the first epoch of this process lifetime. `epoch` must exceed
  /// every epoch already on the log device (recovery reports the old one).
  Status Initialize(uint64_t epoch);

  /// Hook run inside commit, before deltas are computed. The database
  /// uses it to write its catalog/metadata state into the checkpoint
  /// pages so that every commit is self-describing after replay.
  void set_precommit_hook(std::function<Status()> hook) {
    precommit_hook_ = std::move(hook);
  }

  // --- Transactions (flat nesting) -------------------------------------------

  Status BeginTransaction();
  /// Logs and (optionally) syncs the outermost transaction's deltas.
  /// On a log-device failure the manager enters a broken state: the
  /// affected pages stay pinned in memory forever and every later
  /// transaction fails fast, so no uncommitted byte can reach the device.
  Status CommitTransaction();
  /// Discards the transaction bracket. Redo-only logging has no undo:
  /// in-memory partial effects of a failed mutation remain (as before
  /// this subsystem existed); the log simply never commits them, so a
  /// crash still recovers to the last committed state.
  Status AbortTransaction();
  bool in_transaction() const {
    return txn_depth_.load(std::memory_order_acquire) > 0;
  }

  // --- Group commit -----------------------------------------------------------

  /// Blocks until the log is durable through `lsn` (0 returns at once).
  /// In group-commit mode this is where the fsync amortization happens:
  /// the first arriving session becomes the batch leader, snapshots the
  /// flushed tail, performs one device sync *outside* `log_mu_` (so
  /// concurrent commits keep appending and join the next batch), marks
  /// the snapshot durable, and wakes every follower whose commit LSN the
  /// sync covered. Safe from any thread; also correct (one sync, batch of
  /// one) when called without group_commit enabled.
  Status WaitDurable(uint64_t lsn);

  /// End LSN of the most recent top-level commit that logged any deltas
  /// (the LSN to pass to WaitDurable for read-your-writes durability).
  uint64_t last_commit_lsn() const {
    return last_commit_lsn_.load(std::memory_order_acquire);
  }
  bool group_commit_enabled() const { return options_.group_commit; }

  // --- Checkpoint ------------------------------------------------------------

  /// Flushes the pool's dirty frames, syncs the database device, and
  /// begins a fresh log epoch.
  Status Checkpoint();

  // --- Introspection ---------------------------------------------------------

  WalStats stats() const {
    MutexLock lock(log_mu_);
    return stats_;
  }
  uint64_t epoch() const {
    MutexLock lock(log_mu_);
    return writer_.epoch();
  }
  uint64_t durable_lsn() const {
    MutexLock lock(log_mu_);
    return writer_.durable_lsn();
  }
  uint64_t log_bytes() const {
    MutexLock lock(log_mu_);
    return writer_.next_lsn();
  }
  bool broken() const { return broken_.load(std::memory_order_relaxed); }

  /// Top-level commit latency distribution (Observe'd around
  /// CommitTopLevel, including the commit sync).
  Histogram::Snapshot commit_latency() const {
    return commit_latency_ns_.TakeSnapshot();
  }

  /// Appends this manager's metric samples (WalStats counters, log size
  /// and broken gauges, commit-latency and checkpoint-duration
  /// histograms) to `out`.
  void CollectMetrics(std::vector<MetricSample>* out) const;

  // --- PageObserver ----------------------------------------------------------

  void OnPageAccess(PageId page_id, const uint8_t* data) override;
  void OnPageDirtied(PageId page_id) override;
  bool CanEvict(PageId page_id) const override;
  Status BeforePageFlush(PageId page_id, uint64_t page_lsn) override;

 private:
  Status CommitTopLevel();
  Status CheckpointImpl();

  StorageDevice* log_device_;
  BufferPool* pool_;
  LogWriter writer_ GUARDED_BY(log_mu_);
  Options options_;
  std::function<Status()> precommit_hook_;

  // Writer-thread-only state (see the class comment) — except
  // txn_depth_, which in_transaction() reads from any thread (the
  // server polls it during session teardown), so it is atomic.
  std::atomic<int> txn_depth_{0};
  uint64_t next_txn_id_ = 1;
  /// Pre-images of pages first accessed inside the open transaction.
  std::unordered_map<PageId, std::string> snapshots_;

  /// Guards txn_dirty_: written by the writer thread, read by CanEvict
  /// from any thread that evicts a dirty page. kWalState is the deepest
  /// engine rank a pool walk reaches (victim → shard → state).
  mutable Mutex state_mu_{LockRank::kWalState, "wal.state_mu"};
  /// Pages dirtied inside the open transaction (ordered: deterministic
  /// log layout). Also the no-steal protection set; on log failure it is
  /// frozen into `broken_` state.
  std::set<PageId> txn_dirty_ GUARDED_BY(state_mu_);
  std::atomic<bool> broken_{false};

  /// Guards writer_ and stats_: commits and checkpoints append from the
  /// writer thread while BeforePageFlush may sync from any evicting
  /// thread. Never held across a call into the buffer pool.
  mutable Mutex log_mu_{LockRank::kWalLog, "wal.log_mu"};
  WalStats stats_ GUARDED_BY(log_mu_);

  /// Group-commit coordinator state. Lock order (enforced by LockRank):
  /// group_mu_ before log_mu_ (WaitDurable holds group_mu_ only around
  /// leader election and follower waits, never across the device sync
  /// itself).
  Mutex group_mu_{LockRank::kWalGroup, "wal.group_mu"};
  CondVar group_cv_;
  bool group_leader_active_ GUARDED_BY(group_mu_) = false;
  uint64_t group_waiters_ GUARDED_BY(group_mu_) = 0;
  std::atomic<uint64_t> last_commit_lsn_{0};

  /// Always-on latency instruments: relaxed atomics, so Observe is noise
  /// next to the log append/sync it brackets.
  Histogram commit_latency_ns_{Histogram::LatencyBoundsNs()};
  Histogram checkpoint_ns_{Histogram::LatencyBoundsNs()};
  /// Commits released per leader sync (the amortization factor).
  Histogram group_batch_size_{
      std::vector<uint64_t>{1, 2, 4, 8, 16, 32, 64, 128, 256}};
  Histogram group_sync_ns_{Histogram::LatencyBoundsNs()};
};

/// \brief RAII transaction bracket.
///
/// Begins a (possibly nested) transaction on construction; the destructor
/// aborts unless Commit() ran. A null manager makes every operation a
/// no-op, so call sites need not test whether WAL is enabled.
class WalTransaction {
 public:
  explicit WalTransaction(WalManager* wal);
  ~WalTransaction();

  WalTransaction(const WalTransaction&) = delete;
  WalTransaction& operator=(const WalTransaction&) = delete;

  /// Status of the BeginTransaction call; check before doing work.
  const Status& begin_status() const { return begin_status_; }
  Status Commit();

 private:
  WalManager* wal_;
  bool active_ = false;
  Status begin_status_;
};

}  // namespace fieldrep

#endif  // FIELDREP_WAL_WAL_MANAGER_H_
