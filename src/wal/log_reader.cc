#include "wal/log_reader.h"

#include <cstring>

#include "common/bytes.h"
#include "wal/log_writer.h"

namespace fieldrep {

LogReader::LogReader(StorageDevice* device) : device_(device) {}

Status LogReader::Open(bool* valid) {
  *valid = false;
  if (device_->page_count() == 0) return Status::OK();
  uint8_t header[kPageSize];
  Status s = device_->ReadPage(0, header);
  if (!s.ok()) return Status::OK();  // unreadable header == no log
  if (std::memcmp(header, LogWriter::kHeaderMagic,
                  sizeof(LogWriter::kHeaderMagic)) != 0) {
    return Status::OK();
  }
  if (DecodeU32(header + 16) != Crc32(header, 16)) return Status::OK();
  epoch_ = DecodeU64(header + 8);
  opened_ = true;
  *valid = true;
  return Status::OK();
}

Status LogReader::FillTo(size_t target) {
  while (buffer_.size() < target && next_page_ < device_->page_count()) {
    uint8_t page[kPageSize];
    Status s = device_->ReadPage(next_page_, page);
    if (!s.ok()) break;  // truncated device: treat as end of stream
    buffer_.append(reinterpret_cast<const char*>(page), kPageSize);
    ++next_page_;
  }
  return Status::OK();
}

Status LogReader::ReadNext(LogRecord* record, bool* end) {
  *end = true;
  if (!opened_) return Status::FailedPrecondition("log reader not opened");
  FIELDREP_RETURN_IF_ERROR(FillTo(pos_ + 8));
  if (buffer_.size() < pos_ + 8) return Status::OK();
  const uint8_t* base = reinterpret_cast<const uint8_t*>(buffer_.data());
  uint32_t body_len = DecodeU32(base + pos_);
  if (body_len == 0 || body_len > kMaxLogRecordBody) return Status::OK();
  FIELDREP_RETURN_IF_ERROR(FillTo(pos_ + 8 + body_len));
  if (buffer_.size() < pos_ + 8 + body_len) return Status::OK();
  base = reinterpret_cast<const uint8_t*>(buffer_.data());
  uint32_t crc = DecodeU32(base + pos_ + 4);
  const uint8_t* body = base + pos_ + 8;
  if (Crc32(body, body_len) != crc) return Status::OK();
  LogRecord parsed;
  if (!LogRecord::ParseBody(body, body_len, &parsed)) return Status::OK();
  if (parsed.epoch != epoch_) return Status::OK();
  *record = std::move(parsed);
  pos_ += 8 + body_len;
  *end = false;
  return Status::OK();
}

}  // namespace fieldrep
