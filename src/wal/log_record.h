#ifndef FIELDREP_WAL_LOG_RECORD_H_
#define FIELDREP_WAL_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "storage/page.h"

namespace fieldrep {

/// \file
/// Wire format of the write-ahead log (see DESIGN.md "Durability &
/// Recovery").
///
/// The log is a stream of self-delimiting records packed back to back
/// across the pages of a log device. Each record is framed as
///
///   u32 body_len | u32 crc | body
///
/// where `crc` is the CRC-32 of `body` and the body starts with
///
///   u64 epoch | u8 type | u64 txn_id | <type-specific payload>
///
/// A zero `body_len`, a CRC mismatch, or an epoch other than the log
/// header's current epoch all mark the end of the valid log: the tail of
/// the stream after a crash may be torn mid-record, and pages past the
/// logical end still hold records of earlier epochs.

enum class LogRecordType : uint8_t {
  kBegin = 1,       ///< Transaction start.
  kCommit = 2,      ///< Transaction end; makes its page writes replayable.
  kPageWrite = 3,   ///< Physiological redo: bytes at an offset of one page.
  kCheckpoint = 4,  ///< All prior effects are on the device (informational).
};

const char* LogRecordTypeName(LogRecordType type);

struct LogRecord {
  LogRecordType type = LogRecordType::kBegin;
  uint64_t epoch = 0;
  uint64_t txn_id = 0;

  // kPageWrite payload: replay writes `bytes` at `offset` of `page_id`.
  PageId page_id = 0;
  uint32_t offset = 0;
  std::string bytes;

  /// Appends the framed wire encoding (len, crc, body) to `out`.
  void AppendTo(std::string* out) const;

  /// Parses a record body (the bytes covered by the CRC). Returns false on
  /// malformed input.
  static bool ParseBody(const uint8_t* body, size_t len, LogRecord* out);

  /// Framed size this record occupies in the stream.
  size_t WireSize() const;
};

/// Records larger than this are rejected as corruption (a page delta can
/// never legitimately exceed one page plus its header).
inline constexpr uint32_t kMaxLogRecordBody = 2 * kPageSize;

}  // namespace fieldrep

#endif  // FIELDREP_WAL_LOG_RECORD_H_
