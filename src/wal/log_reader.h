#ifndef FIELDREP_WAL_LOG_READER_H_
#define FIELDREP_WAL_LOG_READER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/storage_device.h"
#include "wal/log_record.h"

namespace fieldrep {

/// \brief Sequential scanner over the record stream of a log device.
///
/// The reader validates the log header, then yields records of the
/// header's epoch until the end of the valid stream. "End" is any of: a
/// zero length field (never-written space), a CRC mismatch (torn tail
/// write), an epoch mismatch (stale record of a previous epoch), a
/// malformed body, or device exhaustion — all are normal terminations
/// after a crash, not errors.
class LogReader {
 public:
  /// \param device log backing store (not owned).
  explicit LogReader(StorageDevice* device);

  LogReader(const LogReader&) = delete;
  LogReader& operator=(const LogReader&) = delete;

  /// Reads the header page. `*valid` is false (with OK status) when the
  /// device holds no usable log: empty device, bad magic, or torn header.
  /// A torn header can only be left by a crash during Reset, which runs
  /// only when the log content is already dead, so an invalid header
  /// safely means "nothing to replay".
  Status Open(bool* valid);

  uint64_t epoch() const { return epoch_; }

  /// Reads the next record. Sets `*end` when the valid stream is over.
  Status ReadNext(LogRecord* record, bool* end);

  /// Stream bytes consumed so far.
  uint64_t position() const { return pos_; }

 private:
  /// Buffers stream bytes until at least `target` bytes are available or
  /// the device is exhausted.
  Status FillTo(size_t target);

  StorageDevice* device_;
  uint64_t epoch_ = 0;
  bool opened_ = false;
  std::string buffer_;  ///< Stream bytes [0, buffer_.size()).
  size_t pos_ = 0;
  PageId next_page_ = 1;
};

}  // namespace fieldrep

#endif  // FIELDREP_WAL_LOG_READER_H_
