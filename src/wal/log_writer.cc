#include "wal/log_writer.h"

#include <cstring>

#include "common/bytes.h"
#include "common/strings.h"

namespace fieldrep {

LogWriter::LogWriter(StorageDevice* device) : device_(device) {
  std::memset(tail_page_, 0, sizeof(tail_page_));
}

Status LogWriter::EnsurePage(PageId page_id) {
  while (device_->page_count() <= page_id) {
    PageId allocated;
    FIELDREP_RETURN_IF_ERROR(device_->AllocatePage(&allocated));
  }
  return Status::OK();
}

Status LogWriter::Reset(uint64_t epoch) {
  FIELDREP_RETURN_IF_ERROR(EnsurePage(0));
  uint8_t header[kPageSize];
  std::memset(header, 0, sizeof(header));
  std::memcpy(header, kHeaderMagic, sizeof(kHeaderMagic));
  EncodeU64(header + 8, epoch);
  EncodeU32(header + 16, Crc32(header, 16));
  FIELDREP_RETURN_IF_ERROR(device_->WritePage(0, header));
  ++page_writes_;
  FIELDREP_RETURN_IF_ERROR(device_->Sync());
  ++syncs_;
  epoch_ = epoch;
  next_lsn_ = 0;
  flushed_lsn_ = 0;
  durable_lsn_ = 0;
  initialized_ = true;
  std::memset(tail_page_, 0, sizeof(tail_page_));
  return Status::OK();
}

Status LogWriter::WriteTailPage() {
  PageId page_id = 1 + static_cast<PageId>(next_lsn_ / kPageSize);
  FIELDREP_RETURN_IF_ERROR(EnsurePage(page_id));
  FIELDREP_RETURN_IF_ERROR(device_->WritePage(page_id, tail_page_));
  ++page_writes_;
  return Status::OK();
}

Status LogWriter::Append(const LogRecord& record, uint64_t* end_lsn) {
  if (!initialized_) {
    return Status::FailedPrecondition("log writer not initialized");
  }
  LogRecord stamped = record;
  stamped.epoch = epoch_;
  std::string wire;
  stamped.AppendTo(&wire);

  size_t pos = 0;
  while (pos < wire.size()) {
    size_t page_offset = next_lsn_ % kPageSize;
    size_t room = kPageSize - page_offset;
    size_t n = std::min(room, wire.size() - pos);
    std::memcpy(tail_page_ + page_offset, wire.data() + pos, n);
    pos += n;
    if (page_offset + n == kPageSize) {
      // Tail page filled: write it out and start a fresh one. next_lsn_
      // still addresses this page until advanced below.
      PageId page_id = 1 + static_cast<PageId>(next_lsn_ / kPageSize);
      FIELDREP_RETURN_IF_ERROR(EnsurePage(page_id));
      FIELDREP_RETURN_IF_ERROR(device_->WritePage(page_id, tail_page_));
      ++page_writes_;
      next_lsn_ += n;
      flushed_lsn_ = next_lsn_;
      std::memset(tail_page_, 0, sizeof(tail_page_));
    } else {
      next_lsn_ += n;
    }
  }
  ++records_;
  if (end_lsn != nullptr) *end_lsn = next_lsn_;
  return Status::OK();
}

Status LogWriter::Flush() {
  if (!initialized_) {
    return Status::FailedPrecondition("log writer not initialized");
  }
  if (flushed_lsn_ == next_lsn_) return Status::OK();
  FIELDREP_RETURN_IF_ERROR(WriteTailPage());
  flushed_lsn_ = next_lsn_;
  return Status::OK();
}

Status LogWriter::Sync() {
  FIELDREP_RETURN_IF_ERROR(Flush());
  if (durable_lsn_ == next_lsn_) return Status::OK();
  FIELDREP_RETURN_IF_ERROR(device_->Sync());
  ++syncs_;
  durable_lsn_ = next_lsn_;
  return Status::OK();
}

void LogWriter::MarkDurable(uint64_t lsn) {
  if (lsn <= durable_lsn_) return;
  durable_lsn_ = lsn;
  ++syncs_;
}

}  // namespace fieldrep
