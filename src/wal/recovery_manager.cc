#include "wal/recovery_manager.h"

#include <cstring>
#include <map>
#include <vector>

#include "common/strings.h"
#include "storage/checksum.h"
#include "storage/page.h"
#include "wal/log_reader.h"
#include "wal/log_record.h"

namespace fieldrep {

std::string RecoveryStats::ToString() const {
  return StringPrintf(
      "RecoveryStats{log_found=%d epoch=%llu records=%llu committed=%llu "
      "skipped=%llu pages_written=%llu}",
      log_found ? 1 : 0, static_cast<unsigned long long>(epoch),
      static_cast<unsigned long long>(records_scanned),
      static_cast<unsigned long long>(committed_txns),
      static_cast<unsigned long long>(skipped_txns),
      static_cast<unsigned long long>(pages_written));
}

namespace {

/// Applies one transaction's buffered page writes to the device, in log
/// order. Absolute byte ranges make the whole sequence idempotent, so a
/// crash during recovery itself is handled by simply recovering again.
Status ApplyTransaction(StorageDevice* db, const std::vector<LogRecord>& writes,
                        uint64_t* pages_written) {
  uint8_t buf[kPageSize];
  for (const LogRecord& w : writes) {
    // The transaction may have allocated pages the crash kept off the
    // device; extend it as needed (AllocatePage zero-fills).
    while (w.page_id >= db->page_count()) {
      PageId unused;
      FIELDREP_RETURN_IF_ERROR(db->AllocatePage(&unused));
    }
    FIELDREP_RETURN_IF_ERROR(db->ReadPage(w.page_id, buf));
    std::memcpy(buf + w.offset, w.bytes.data(), w.bytes.size());
    // Replayed deltas never cover the header checksum field (it is stamped
    // at flush time, after the WAL diff was taken), so restamp before the
    // page goes back to the device or it would carry a stale checksum.
    if (w.page_id != 0) StampPageChecksum(buf);
    FIELDREP_RETURN_IF_ERROR(db->WritePage(w.page_id, buf));
    ++*pages_written;
  }
  return Status::OK();
}

}  // namespace

Status RecoveryManager::Recover(StorageDevice* db_device,
                                StorageDevice* log_device,
                                RecoveryStats* stats) {
  *stats = RecoveryStats();
  LogReader reader(log_device);
  bool valid = false;
  FIELDREP_RETURN_IF_ERROR(reader.Open(&valid));
  if (!valid) return Status::OK();  // Fresh log device: nothing to do.
  stats->log_found = true;
  stats->epoch = reader.epoch();

  // Page writes of transactions whose commit record has not been seen yet.
  std::map<uint64_t, std::vector<LogRecord>> pending;
  bool applied_any = false;
  while (true) {
    LogRecord rec;
    bool end = false;
    FIELDREP_RETURN_IF_ERROR(reader.ReadNext(&rec, &end));
    if (end) break;
    ++stats->records_scanned;
    switch (rec.type) {
      case LogRecordType::kBegin:
        pending[rec.txn_id];
        break;
      case LogRecordType::kPageWrite:
        pending[rec.txn_id].push_back(std::move(rec));
        break;
      case LogRecordType::kCommit: {
        auto it = pending.find(rec.txn_id);
        if (it != pending.end()) {
          FIELDREP_RETURN_IF_ERROR(
              ApplyTransaction(db_device, it->second, &stats->pages_written));
          applied_any = true;
          pending.erase(it);
        }
        ++stats->committed_txns;
        break;
      }
      case LogRecordType::kCheckpoint:
        break;
    }
  }
  stats->skipped_txns = pending.size();
  if (applied_any) {
    FIELDREP_RETURN_IF_ERROR(db_device->Sync());
  }
  return Status::OK();
}

}  // namespace fieldrep
