#ifndef FIELDREP_NET_SERVER_H_
#define FIELDREP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "net/protocol.h"
#include "telemetry/metrics.h"

namespace fieldrep::net {

/// Always-on network counters, exposed through the database's
/// MetricsRegistry. Held by shared_ptr: the registry has no collector
/// removal, so the collector closure keeps the block alive even after
/// the server stops (counters then simply freeze).
struct NetMetrics {
  std::atomic<uint64_t> sessions_accepted{0};
  std::atomic<uint64_t> sessions_refused{0};
  std::atomic<int64_t> sessions_active{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<int64_t> pending{0};
  /// Statements parked on a lock conflict (each successful retry parked
  /// at least once).
  std::atomic<uint64_t> parks{0};
  /// Transactions killed by wait-or-die (client told to retry).
  std::atomic<uint64_t> txn_aborts{0};
  Histogram request_ns{Histogram::LatencyBoundsNs()};

  void Collect(std::vector<MetricSample>* out) const;
};

struct ServerOptions {
  /// Listen address ("unix:/path" or "tcp:PORT"; "tcp:0" picks a free
  /// port, reported by Server::address()).
  std::string address = "tcp:0";
  /// Admission control: connections beyond this are refused with a
  /// kUnavailable error frame at accept.
  size_t max_sessions = 64;
  /// Global bound on queued (undispatched) requests. At the bound the
  /// event loop stops reading from session sockets, pushing backpressure
  /// into the kernel buffers and ultimately the clients.
  size_t max_pending_requests = 1024;
  /// Per-session pipeline bound. Requests beyond it are answered — in
  /// request order, preserving the async client's FIFO pairing — with a
  /// structured kUnavailable error instead of being executed.
  size_t max_pipeline = 128;
  /// Worker threads executing requests. The server owns its own pool:
  /// dispatching onto the database's query pool would nest RunBatch.
  size_t worker_threads = 4;
  /// Bounds response writes to slow/dead peers (0 = wait forever).
  int write_timeout_ms = 30000;
};

/// \brief The network front-end (DESIGN.md §12): a poll-based event loop
/// feeding a worker pool, with per-session transaction and
/// prepared-statement state.
///
/// Threading model:
///   - The event thread accepts, reads, and reassembles frames; it never
///     executes a request.
///   - Complete requests queue per session; at most one worker processes
///     a session at a time (responses stay in request order), so session
///     state (statement dictionary, transaction flag) needs no lock.
///   - Mutations run under the engine's per-set two-phase locks
///     (DESIGN.md §14). Each mutating statement runs inside a session
///     transaction — the client's explicit Begin..Commit bracket, or an
///     implicit single-statement one — whose write-lock set is taken
///     *non-blockingly* (Database::TryLockSetForWrite). On a conflict
///     the session parks: the statement goes back to the queue front and
///     the worker returns to the pool, so a full worker pool can never
///     deadlock on held locks. Every lock release (commit, abort,
///     disconnect) and each event-loop tick redispatches parked
///     sessions. Wait-or-die conflicts abort the transaction with a
///     retryable error instead of parking. Sessions writing disjoint
///     sets proceed fully in parallel and their commits batch behind one
///     group-commit fsync.
///   - Reads take no locks and never park.
///   - A session's transaction is detached from any thread between
///     statements (Database::DetachSessionTransaction) and reattached by
///     whichever worker picks the session up next.
///
/// Disconnect (or Stop) with an open transaction — explicit, or an
/// implicit one parked on a conflict — aborts it, releasing exactly that
/// session's locks.
class Server {
 public:
  /// Starts listening and serving. `db` must outlive the server.
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, disconnects every session (open transactions are
  /// aborted), and joins all threads. Idempotent.
  void Stop();

  /// The resolved listen address (e.g. "tcp:40123" for "tcp:0").
  const std::string& address() const { return address_; }

  const NetMetrics& metrics() const { return *metrics_; }

 private:
  struct QueuedRequest {
    Frame frame;
    bool rejected = false;  ///< Pipeline overflow: answer kUnavailable.
  };

  struct PreparedStatement {
    bool is_update = false;
    ReadStatement read;
    UpdateStatement update;
    uint16_t param_count = 0;
    uint64_t uses = 0;
  };

  struct Session {
    uint64_t id = 0;
    int fd = -1;
    /// Frame reassembly buffer; event thread only.
    std::string in_buf;
    /// Serializes response writes (worker replies vs. the event thread's
    /// protocol-error replies). kSessionWrite ranks above every engine
    /// lock: replies are written after request execution completes, but
    /// WaitDurable's group-commit locks may still be held upstack.
    Mutex write_mu{LockRank::kSessionWrite, "net.session.write_mu"};

    // --- Coordination state, guarded by Server::mu_ -------------------
    std::deque<QueuedRequest> queue;
    bool busy = false;     ///< A worker owns the processing loop.
    bool parked = false;   ///< Front request waits on a lock conflict.
    bool closing = false;  ///< Drop pending work, clean up, die.
    bool dead = false;     ///< Cleaned up; event thread may erase.

    // --- Worker-owned state (single processing worker at a time) ------
    bool handshaken = false;
    /// The client holds an explicit Begin..Commit/Abort bracket.
    bool txn_open = false;
    /// The session's transaction while detached from any thread: the
    /// explicit bracket between statements, or an implicit
    /// single-statement transaction parked on a lock conflict (it keeps
    /// the locks it already won — ascending ids keep the parked
    /// waits-for graph acyclic). Aborted at disconnect.
    Database::SessionTxn* txn = nullptr;
    uint32_t next_stmt_id = 1;
    std::map<uint32_t, PreparedStatement> statements;
  };

  enum class HandleOutcome { kContinue, kClose, kParked };

  Server() = default;

  void EventLoop();
  void AcceptConnections();
  /// Reads, reassembles, and enqueues frames for one session. Returns
  /// false when the session should be torn down (EOF, error, protocol
  /// violation).
  bool ReadSession(const std::shared_ptr<Session>& s);
  void EnqueueFrame(const std::shared_ptr<Session>& s, Frame frame);

  /// Worker entry: drains the session's request queue.
  void ProcessSession(std::shared_ptr<Session> s);
  /// Handles one request; writes the response (unless the request
  /// parked). kClose means the session must close (Goodbye / broken
  /// pipe).
  HandleOutcome HandleRequest(const std::shared_ptr<Session>& s,
                              Frame& request);
  Frame Dispatch(const std::shared_ptr<Session>& s, Frame& request,
                 bool* parked);

  /// Runs one bound update statement as an atomic unit: attaches (or
  /// implicitly begins) the session's transaction, takes the write-lock
  /// set non-blockingly, executes, and commits/aborts implicit brackets.
  /// Sets *parked (and re-queues the request) on a lock conflict.
  Frame RunMutation(const std::shared_ptr<Session>& s, Frame& request,
                    const UpdateQuery& bound, bool* parked);

  Frame OkFrame(uint64_t session_id, std::string payload) const;
  Frame ErrorFrame(uint64_t session_id, const Status& status) const;
  bool WriteReply(const std::shared_ptr<Session>& s, const Frame& reply);

  /// Re-queues `request` at the queue front and marks the session
  /// parked (the worker then returns to the pool).
  void ParkSession(const std::shared_ptr<Session>& s, Frame&& request);
  /// Redispatches every parked session (called after any lock release:
  /// commit, abort, implicit-statement completion, disconnect cleanup —
  /// and each event-loop tick as a liveness backstop). A redispatched
  /// session retries its try-lock and simply parks again if still
  /// blocked.
  void WakeParkedLocked() REQUIRES(mu_);
  void WakeParked() EXCLUDES(mu_);

  /// Final teardown: abort the session's transaction (releasing exactly
  /// its locks), mark dead, and signal the event thread.
  void CleanupSessionLocked(const std::shared_ptr<Session>& s) REQUIRES(mu_);

  void Wake();

  Database* db_ = nullptr;
  ServerOptions options_;
  std::string address_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::shared_ptr<NetMetrics> metrics_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread event_thread_;

  /// One lock for all cross-thread coordination: the session map, every
  /// session's queue/flags, and the pending-request count. Held only
  /// around state transitions, never across request execution or socket
  /// writes — but CleanupSessionLocked aborts open transactions under
  /// it, so it ranks below every engine lock.
  Mutex mu_{LockRank::kServer, "net.server.mu"};
  std::map<uint64_t, std::shared_ptr<Session>> sessions_ GUARDED_BY(mu_);
  uint64_t next_session_id_ GUARDED_BY(mu_) = 1;
  size_t pending_requests_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace fieldrep::net

#endif  // FIELDREP_NET_SERVER_H_
