#ifndef FIELDREP_NET_SERVER_H_
#define FIELDREP_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotated_mutex.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "net/protocol.h"
#include "telemetry/metrics.h"

namespace fieldrep::net {

/// Always-on network counters, exposed through the database's
/// MetricsRegistry. Held by shared_ptr: the registry has no collector
/// removal, so the collector closure keeps the block alive even after
/// the server stops (counters then simply freeze).
struct NetMetrics {
  std::atomic<uint64_t> sessions_accepted{0};
  std::atomic<uint64_t> sessions_refused{0};
  std::atomic<int64_t> sessions_active{0};
  std::atomic<uint64_t> requests{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<int64_t> pending{0};
  Histogram request_ns{Histogram::LatencyBoundsNs()};

  void Collect(std::vector<MetricSample>* out) const;
};

struct ServerOptions {
  /// Listen address ("unix:/path" or "tcp:PORT"; "tcp:0" picks a free
  /// port, reported by Server::address()).
  std::string address = "tcp:0";
  /// Admission control: connections beyond this are refused with a
  /// kUnavailable error frame at accept.
  size_t max_sessions = 64;
  /// Global bound on queued (undispatched) requests. At the bound the
  /// event loop stops reading from session sockets, pushing backpressure
  /// into the kernel buffers and ultimately the clients.
  size_t max_pending_requests = 1024;
  /// Per-session pipeline bound. Requests beyond it are answered — in
  /// request order, preserving the async client's FIFO pairing — with a
  /// structured kUnavailable error instead of being executed.
  size_t max_pipeline = 128;
  /// Worker threads executing requests. The server owns its own pool:
  /// dispatching onto the database's query pool would nest RunBatch.
  size_t worker_threads = 4;
  /// Bounds response writes to slow/dead peers (0 = wait forever).
  int write_timeout_ms = 30000;
};

/// \brief The network front-end (DESIGN.md §12): a poll-based event loop
/// feeding a worker pool, with per-session transaction and
/// prepared-statement state.
///
/// Threading model:
///   - The event thread accepts, reads, and reassembles frames; it never
///     executes a request.
///   - Complete requests queue per session; at most one worker processes
///     a session at a time (responses stay in request order), so session
///     state (statement dictionary, transaction flag) needs no lock.
///   - Mutating requests serialize on a session-owned *writer gate*. A
///     session that cannot take the gate parks — its worker returns to
///     the pool instead of blocking, and the gate's release redispatches
///     the next parked session — so the pool can never deadlock on the
///     single-writer engine.
///   - A session holds the gate for the span of one auto-committed
///     mutation or an explicit Begin..Commit/Abort bracket. Commit
///     releases the gate *before* waiting on log durability
///     (WalManager::WaitDurable), which is what lets concurrent commits
///     batch behind one leader fsync.
///
/// Disconnect (or Stop) with an open transaction aborts it and releases
/// the gate before the session is destroyed.
class Server {
 public:
  /// Starts listening and serving. `db` must outlive the server.
  static Result<std::unique_ptr<Server>> Start(Database* db,
                                               const ServerOptions& options);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops accepting, disconnects every session (open transactions are
  /// aborted), and joins all threads. Idempotent.
  void Stop();

  /// The resolved listen address (e.g. "tcp:40123" for "tcp:0").
  const std::string& address() const { return address_; }

  const NetMetrics& metrics() const { return *metrics_; }

 private:
  struct QueuedRequest {
    Frame frame;
    bool rejected = false;  ///< Pipeline overflow: answer kUnavailable.
  };

  struct PreparedStatement {
    bool is_update = false;
    ReadStatement read;
    UpdateStatement update;
    uint16_t param_count = 0;
    uint64_t uses = 0;
  };

  struct Session {
    uint64_t id = 0;
    int fd = -1;
    /// Frame reassembly buffer; event thread only.
    std::string in_buf;
    /// Serializes response writes (worker replies vs. the event thread's
    /// protocol-error replies). kSessionWrite ranks above every engine
    /// lock: replies are written after request execution completes, but
    /// WaitDurable's group-commit locks may still be held upstack.
    Mutex write_mu{LockRank::kSessionWrite, "net.session.write_mu"};

    // --- Coordination state, guarded by Server::mu_ -------------------
    std::deque<QueuedRequest> queue;
    bool busy = false;     ///< A worker owns the processing loop.
    bool parked = false;   ///< Queued on the writer gate.
    bool closing = false;  ///< Drop pending work, clean up, die.
    bool dead = false;     ///< Cleaned up; event thread may erase.

    // --- Worker-owned state (single processing worker at a time) ------
    bool handshaken = false;
    bool txn_open = false;
    uint32_t next_stmt_id = 1;
    std::map<uint32_t, PreparedStatement> statements;
  };

  Server() = default;

  void EventLoop();
  void AcceptConnections();
  /// Reads, reassembles, and enqueues frames for one session. Returns
  /// false when the session should be torn down (EOF, error, protocol
  /// violation).
  bool ReadSession(const std::shared_ptr<Session>& s);
  void EnqueueFrame(const std::shared_ptr<Session>& s, Frame frame);

  /// Worker entry: drains the session's request queue.
  void ProcessSession(std::shared_ptr<Session> s);
  /// Handles one request; writes the response. Returns false if the
  /// session must close (Goodbye / broken pipe).
  bool HandleRequest(const std::shared_ptr<Session>& s, Frame& request);
  Frame Dispatch(const std::shared_ptr<Session>& s, const Frame& request);

  Frame OkFrame(uint64_t session_id, std::string payload) const;
  Frame ErrorFrame(uint64_t session_id, const Status& status) const;
  bool WriteReply(const std::shared_ptr<Session>& s, const Frame& reply);

  /// True if `s` may mutate now: takes the free gate or already owns it.
  bool TryAcquireGateLocked(const std::shared_ptr<Session>& s) REQUIRES(mu_);
  /// Releases the gate if `s` owns it and redispatches the next parked
  /// session.
  void ReleaseGateLocked(const std::shared_ptr<Session>& s) REQUIRES(mu_);
  void ReleaseGate(const std::shared_ptr<Session>& s) EXCLUDES(mu_);

  /// Final teardown: abort any open transaction, release the gate, mark
  /// dead, and signal the event thread.
  void CleanupSessionLocked(const std::shared_ptr<Session>& s) REQUIRES(mu_);

  bool NeedsWriterGate(const Session& s, const Frame& request) const;
  void Wake();

  Database* db_ = nullptr;
  ServerOptions options_;
  std::string address_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::shared_ptr<NetMetrics> metrics_;
  std::unique_ptr<ThreadPool> workers_;
  std::thread event_thread_;

  /// One lock for all cross-thread coordination: the session map, every
  /// session's queue/flags, the writer gate, and the pending-request
  /// count. Held only around state transitions, never across request
  /// execution or socket writes — but CleanupSessionLocked aborts open
  /// transactions under it, so it ranks below every engine lock.
  Mutex mu_{LockRank::kServer, "net.server.mu"};
  std::map<uint64_t, std::shared_ptr<Session>> sessions_ GUARDED_BY(mu_);
  uint64_t next_session_id_ GUARDED_BY(mu_) = 1;
  /// Session id holding the writer gate.
  uint64_t gate_owner_ GUARDED_BY(mu_) = 0;
  std::deque<uint64_t> gate_waiters_ GUARDED_BY(mu_);
  size_t pending_requests_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
  std::atomic<bool> stopped_{false};
};

}  // namespace fieldrep::net

#endif  // FIELDREP_NET_SERVER_H_
