#ifndef FIELDREP_NET_PROTOCOL_H_
#define FIELDREP_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/type.h"
#include "common/status.h"
#include "query/read_query.h"
#include "query/update_query.h"

namespace fieldrep::net {

/// \file
/// The fieldrep wire protocol (DESIGN.md §12): length-prefixed binary
/// frames carrying a fixed header (magic, version, opcode, session id)
/// and an opcode-specific payload. The same codec serves both sides —
/// the server (src/net/server.h) and the client library
/// (src/client/client.h) — so a round-tripped query is bit-identical to
/// the embedded ReadQuery/UpdateQuery it encodes.
///
/// Frame layout (all integers little-endian, matching common/bytes.h):
///
///   u32 length      bytes that follow this field (>= kFrameHeaderSize)
///   u32 magic       kMagic ("FRPC")
///   u16 version     kProtocolVersion
///   u16 opcode      Opcode
///   u64 session_id  0 until the handshake assigns one
///   u8[] payload    length - kFrameHeaderSize bytes
///
/// Every request frame receives exactly one response frame (kOk or
/// kError) on the same connection, in request order — pipelining is the
/// client's async mode. Oversize lengths, bad magic, and version
/// mismatches are protocol errors: the server answers with a structured
/// kError frame when it still can and drops the session.

inline constexpr uint32_t kMagic = 0x43505246;  // "FRPC"
inline constexpr uint16_t kProtocolVersion = 1;
/// magic + version + opcode + session id.
inline constexpr uint32_t kFrameHeaderSize = 16;
/// Upper bound on the length field: defends frame reassembly against
/// garbage lengths and bounds per-session buffering.
inline constexpr uint32_t kMaxFrameLength = 16u << 20;

enum class Opcode : uint16_t {
  // Requests.
  kHandshake = 1,       ///< lp client-name -> u64 session id, u16 version
  kPrepareRead = 2,     ///< ReadStatement -> u32 stmt id, u16 param count
  kPrepareUpdate = 3,   ///< UpdateStatement -> u32 stmt id, u16 param count
  kExecute = 4,         ///< u32 stmt id, params -> ReadResult/UpdateResult
  kCloseStatement = 5,  ///< u32 stmt id -> empty
  kBegin = 6,           ///< empty -> empty (acquires the writer token)
  kCommit = 7,          ///< empty -> empty (group-commit durable)
  kAbort = 8,           ///< empty -> empty
  kRetrieve = 9,        ///< ReadStatement, no params -> ReadResult
  kReplace = 10,        ///< UpdateStatement, no params -> UpdateResult
  kMetrics = 11,        ///< lp format ("prometheus"|"json"|"text") -> lp text
  kCatalog = 12,        ///< empty -> CatalogInfo
  kGoodbye = 13,        ///< empty -> empty, then the server closes
  // Responses.
  kOk = 100,
  kError = 101,  ///< u16 StatusCode, lp message
};

const char* OpcodeName(Opcode op);

/// One decoded frame (header fields + raw payload).
struct Frame {
  uint16_t opcode = 0;
  uint64_t session_id = 0;
  std::string payload;
};

/// Appends the complete wire encoding of `frame` to `out`.
void EncodeFrame(const Frame& frame, std::string* out);

/// Incremental frame reassembly over a byte-stream buffer. Returns OK
/// with `*complete = true` and the frame extracted (consumed from
/// `buffer`) when a full valid frame is buffered; OK with
/// `*complete = false` when more bytes are needed; and a non-OK status
/// (InvalidArgument) on protocol errors — oversize/undersize length, bad
/// magic, version mismatch — after which the connection is unusable.
Status TryParseFrame(std::string* buffer, Frame* frame, bool* complete);

// --- Statement templates ------------------------------------------------------

/// A predicate/assignment operand in a prepared-statement template:
/// either a literal Value or a `?i` parameter placeholder bound at
/// execute time (the mysql-client statement model).
struct WireOperand {
  bool is_param = false;
  uint16_t param_index = 0;
  Value literal;

  static WireOperand Lit(Value v) {
    WireOperand o;
    o.literal = std::move(v);
    return o;
  }
  static WireOperand Param(uint16_t index) {
    WireOperand o;
    o.is_param = true;
    o.param_index = index;
    return o;
  }
};

/// Predicate shape with operand placeholders.
struct StatementPredicate {
  std::string attr_name;
  CompareOp op = CompareOp::kEq;
  WireOperand operand;
  WireOperand operand2;  ///< upper bound for kBetween
};

/// A parameterizable ReadQuery. `From` lifts a concrete query (all
/// operands literal); `Bind` substitutes `params` into the placeholders
/// and yields the executable query.
struct ReadStatement {
  std::string set_name;
  std::vector<std::string> projections;
  std::optional<StatementPredicate> predicate;
  bool use_replication = true;
  bool write_output = false;
  uint32_t output_pad = 0;

  static ReadStatement From(const ReadQuery& query);
  Result<ReadQuery> Bind(const std::vector<Value>& params) const;
  /// Placeholders the statement expects: max param index + 1.
  uint16_t ParamCount() const;
};

/// A parameterizable UpdateQuery.
struct UpdateStatement {
  std::string set_name;
  std::optional<StatementPredicate> predicate;
  std::vector<std::pair<std::string, WireOperand>> assignments;

  static UpdateStatement From(const UpdateQuery& query);
  Result<UpdateQuery> Bind(const std::vector<Value>& params) const;
  uint16_t ParamCount() const;
};

void EncodeReadStatement(const ReadStatement& stmt, std::string* out);
Status DecodeReadStatement(class ::fieldrep::ByteReader* reader,
                           ReadStatement* stmt);
void EncodeUpdateStatement(const UpdateStatement& stmt, std::string* out);
Status DecodeUpdateStatement(class ::fieldrep::ByteReader* reader,
                             UpdateStatement* stmt);

// --- Results ------------------------------------------------------------------

/// Result payloads carry a 1-byte kind tag so kExecute replies are
/// self-describing (the statement dictionary knows the kind too; the tag
/// catches client/server disagreement).
inline constexpr uint8_t kResultKindRead = 1;
inline constexpr uint8_t kResultKindUpdate = 2;

void EncodeReadResult(const ReadResult& result, std::string* out);
Status DecodeReadResult(class ::fieldrep::ByteReader* reader,
                        ReadResult* result);
void EncodeUpdateResult(const UpdateResult& result, std::string* out);
Status DecodeUpdateResult(class ::fieldrep::ByteReader* reader,
                          UpdateResult* result);

/// kError payload.
void EncodeErrorPayload(const Status& status, std::string* out);
Status DecodeErrorPayload(class ::fieldrep::ByteReader* reader,
                          Status* status);

// --- Catalog summary ----------------------------------------------------------

/// What kCatalog reports: enough schema for a generic client (the smoke
/// tool, fieldrep_stats --connect) to build queries against any served
/// database.
struct CatalogInfo {
  struct Attr {
    std::string name;
    FieldType type = FieldType::kInt32;
    uint32_t char_length = 0;
    std::string ref_type;  ///< referenced type name for kRef attributes
  };
  struct Set {
    std::string name;
    std::string type_name;
    std::vector<Attr> attributes;
  };
  std::vector<Set> sets;
  /// Replication path specs currently defined (e.g. "Emp1.dept.name").
  std::vector<std::string> replicated_paths;
};

void EncodeCatalogInfo(const CatalogInfo& info, std::string* out);
Status DecodeCatalogInfo(class ::fieldrep::ByteReader* reader,
                         CatalogInfo* info);

// --- Sockets ------------------------------------------------------------------

/// Address grammar shared by server and client:
///   "unix:/path/to.sock"    AF_UNIX stream socket
///   "tcp:PORT"              loopback TCP (server binds 127.0.0.1)
///   "tcp:HOST:PORT"         explicit host (client side)
/// `tcp:0` asks the kernel for a free port; BoundAddress reports it.

/// Creates, binds, and listens. Unix socket paths are unlinked first.
Result<int> ListenOn(const std::string& address, int backlog = 128);
/// Blocking connect.
Result<int> ConnectTo(const std::string& address);
/// The resolved address of a listening socket ("tcp:0" -> real port).
Result<std::string> BoundAddress(int listen_fd, const std::string& address);

/// Blocking write of the whole buffer (EINTR-safe, EAGAIN via poll).
/// `timeout_ms` bounds the total wait on writability (0 = no timeout).
Status WriteFully(int fd, const void* data, size_t size,
                  int timeout_ms = 0);
/// Blocking read of one complete frame. `buffer` carries partial bytes
/// across calls (client connections keep one). EOF before any byte of a
/// frame yields kNotFound("connection closed"); EOF mid-frame yields
/// Corruption.
Status ReadFrameBlocking(int fd, std::string* buffer, Frame* frame);

/// Encodes and writes one frame.
Status WriteFrame(int fd, const Frame& frame, int timeout_ms = 0);

}  // namespace fieldrep::net

#endif  // FIELDREP_NET_PROTOCOL_H_
