#include "net/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/strings.h"

namespace fieldrep::net {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kHandshake: return "Handshake";
    case Opcode::kPrepareRead: return "PrepareRead";
    case Opcode::kPrepareUpdate: return "PrepareUpdate";
    case Opcode::kExecute: return "Execute";
    case Opcode::kCloseStatement: return "CloseStatement";
    case Opcode::kBegin: return "Begin";
    case Opcode::kCommit: return "Commit";
    case Opcode::kAbort: return "Abort";
    case Opcode::kRetrieve: return "Retrieve";
    case Opcode::kReplace: return "Replace";
    case Opcode::kMetrics: return "Metrics";
    case Opcode::kCatalog: return "Catalog";
    case Opcode::kGoodbye: return "Goodbye";
    case Opcode::kOk: return "Ok";
    case Opcode::kError: return "Error";
  }
  return "Unknown";
}

void EncodeFrame(const Frame& frame, std::string* out) {
  PutU32(out, kFrameHeaderSize + static_cast<uint32_t>(frame.payload.size()));
  PutU32(out, kMagic);
  PutU16(out, kProtocolVersion);
  PutU16(out, frame.opcode);
  PutU64(out, frame.session_id);
  out->append(frame.payload);
}

Status TryParseFrame(std::string* buffer, Frame* frame, bool* complete) {
  *complete = false;
  if (buffer->size() < 4) return Status::OK();
  const uint32_t length =
      DecodeU32(reinterpret_cast<const uint8_t*>(buffer->data()));
  if (length < kFrameHeaderSize) {
    return Status::InvalidArgument(
        StringPrintf("frame length %u below header size", length));
  }
  if (length > kMaxFrameLength) {
    return Status::InvalidArgument(
        StringPrintf("frame length %u exceeds the %u-byte limit", length,
                     kMaxFrameLength));
  }
  if (buffer->size() < 4 + static_cast<size_t>(length)) return Status::OK();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buffer->data()) + 4;
  const uint32_t magic = DecodeU32(p);
  if (magic != kMagic) {
    return Status::InvalidArgument(
        StringPrintf("bad frame magic 0x%08x", magic));
  }
  const uint16_t version = DecodeU16(p + 4);
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StringPrintf("protocol version %u not supported (server speaks %u)",
                     version, kProtocolVersion));
  }
  frame->opcode = DecodeU16(p + 6);
  frame->session_id = DecodeU64(p + 8);
  frame->payload.assign(*buffer, 4 + kFrameHeaderSize,
                        length - kFrameHeaderSize);
  buffer->erase(0, 4 + static_cast<size_t>(length));
  *complete = true;
  return Status::OK();
}

// --- Statement templates ------------------------------------------------------

namespace {

void EncodeOperand(const WireOperand& op, std::string* out) {
  out->push_back(op.is_param ? 1 : 0);
  if (op.is_param) {
    PutU16(out, op.param_index);
  } else {
    EncodeTaggedValue(op.literal, out);
  }
}

Status DecodeOperand(ByteReader* reader, WireOperand* op) {
  std::string tag;
  if (!reader->GetRaw(1, &tag)) {
    return Status::Corruption("truncated operand");
  }
  if (tag[0] != 0 && tag[0] != 1) {
    return Status::Corruption("bad operand tag");
  }
  op->is_param = tag[0] == 1;
  if (op->is_param) {
    if (!reader->GetU16(&op->param_index)) {
      return Status::Corruption("truncated operand index");
    }
    return Status::OK();
  }
  return DecodeTaggedValue(reader, &op->literal);
}

void EncodePredicate(const std::optional<StatementPredicate>& pred,
                     std::string* out) {
  out->push_back(pred.has_value() ? 1 : 0);
  if (!pred.has_value()) return;
  PutLengthPrefixed(out, pred->attr_name);
  out->push_back(static_cast<char>(pred->op));
  EncodeOperand(pred->operand, out);
  EncodeOperand(pred->operand2, out);
}

Status DecodePredicate(ByteReader* reader,
                       std::optional<StatementPredicate>* pred) {
  std::string flag;
  if (!reader->GetRaw(1, &flag)) {
    return Status::Corruption("truncated predicate flag");
  }
  if (flag[0] == 0) {
    pred->reset();
    return Status::OK();
  }
  StatementPredicate p;
  std::string op_byte;
  if (!reader->GetLengthPrefixed(&p.attr_name) ||
      !reader->GetRaw(1, &op_byte)) {
    return Status::Corruption("truncated predicate");
  }
  if (static_cast<uint8_t>(op_byte[0]) >
      static_cast<uint8_t>(CompareOp::kBetween)) {
    return Status::Corruption("bad compare op");
  }
  p.op = static_cast<CompareOp>(op_byte[0]);
  FIELDREP_RETURN_IF_ERROR(DecodeOperand(reader, &p.operand));
  FIELDREP_RETURN_IF_ERROR(DecodeOperand(reader, &p.operand2));
  *pred = std::move(p);
  return Status::OK();
}

Result<Value> BindOperand(const WireOperand& op,
                          const std::vector<Value>& params) {
  if (!op.is_param) return op.literal;
  if (op.param_index >= params.size()) {
    return Status::InvalidArgument(
        StringPrintf("parameter ?%u not bound (%zu given)", op.param_index,
                     params.size()));
  }
  return params[op.param_index];
}

uint16_t OperandParamCount(const WireOperand& op) {
  return op.is_param ? static_cast<uint16_t>(op.param_index + 1) : 0;
}

uint16_t PredicateParamCount(const std::optional<StatementPredicate>& pred) {
  if (!pred.has_value()) return 0;
  return std::max(OperandParamCount(pred->operand),
                  OperandParamCount(pred->operand2));
}

Result<std::optional<Predicate>> BindPredicate(
    const std::optional<StatementPredicate>& pred,
    const std::vector<Value>& params) {
  if (!pred.has_value()) return std::optional<Predicate>();
  Predicate p;
  p.attr_name = pred->attr_name;
  p.op = pred->op;
  FIELDREP_ASSIGN_OR_RETURN(p.operand, BindOperand(pred->operand, params));
  FIELDREP_ASSIGN_OR_RETURN(p.operand2, BindOperand(pred->operand2, params));
  return std::optional<Predicate>(std::move(p));
}

std::optional<StatementPredicate> LiftPredicate(
    const std::optional<Predicate>& pred) {
  if (!pred.has_value()) return std::nullopt;
  StatementPredicate p;
  p.attr_name = pred->attr_name;
  p.op = pred->op;
  p.operand = WireOperand::Lit(pred->operand);
  p.operand2 = WireOperand::Lit(pred->operand2);
  return p;
}

}  // namespace

ReadStatement ReadStatement::From(const ReadQuery& query) {
  ReadStatement stmt;
  stmt.set_name = query.set_name;
  stmt.projections = query.projections;
  stmt.predicate = LiftPredicate(query.predicate);
  stmt.use_replication = query.use_replication;
  stmt.write_output = query.write_output;
  stmt.output_pad = query.output_pad;
  return stmt;
}

Result<ReadQuery> ReadStatement::Bind(const std::vector<Value>& params) const {
  ReadQuery query;
  query.set_name = set_name;
  query.projections = projections;
  FIELDREP_ASSIGN_OR_RETURN(query.predicate,
                            BindPredicate(predicate, params));
  query.use_replication = use_replication;
  query.write_output = write_output;
  query.output_pad = output_pad;
  return query;
}

uint16_t ReadStatement::ParamCount() const {
  return PredicateParamCount(predicate);
}

UpdateStatement UpdateStatement::From(const UpdateQuery& query) {
  UpdateStatement stmt;
  stmt.set_name = query.set_name;
  stmt.predicate = LiftPredicate(query.predicate);
  stmt.assignments.reserve(query.assignments.size());
  for (const auto& [attr, value] : query.assignments) {
    stmt.assignments.emplace_back(attr, WireOperand::Lit(value));
  }
  return stmt;
}

Result<UpdateQuery> UpdateStatement::Bind(
    const std::vector<Value>& params) const {
  UpdateQuery query;
  query.set_name = set_name;
  FIELDREP_ASSIGN_OR_RETURN(query.predicate,
                            BindPredicate(predicate, params));
  query.assignments.reserve(assignments.size());
  for (const auto& [attr, operand] : assignments) {
    FIELDREP_ASSIGN_OR_RETURN(Value v, BindOperand(operand, params));
    query.assignments.emplace_back(attr, std::move(v));
  }
  return query;
}

uint16_t UpdateStatement::ParamCount() const {
  uint16_t n = PredicateParamCount(predicate);
  for (const auto& [attr, operand] : assignments) {
    (void)attr;
    n = std::max(n, OperandParamCount(operand));
  }
  return n;
}

void EncodeReadStatement(const ReadStatement& stmt, std::string* out) {
  PutLengthPrefixed(out, stmt.set_name);
  PutU16(out, static_cast<uint16_t>(stmt.projections.size()));
  for (const std::string& p : stmt.projections) PutLengthPrefixed(out, p);
  EncodePredicate(stmt.predicate, out);
  out->push_back(stmt.use_replication ? 1 : 0);
  out->push_back(stmt.write_output ? 1 : 0);
  PutU32(out, stmt.output_pad);
}

Status DecodeReadStatement(ByteReader* reader, ReadStatement* stmt) {
  uint16_t n_proj;
  if (!reader->GetLengthPrefixed(&stmt->set_name) ||
      !reader->GetU16(&n_proj)) {
    return Status::Corruption("truncated read statement");
  }
  stmt->projections.clear();
  stmt->projections.reserve(n_proj);
  for (uint16_t i = 0; i < n_proj; ++i) {
    std::string p;
    if (!reader->GetLengthPrefixed(&p)) {
      return Status::Corruption("truncated projection list");
    }
    stmt->projections.push_back(std::move(p));
  }
  FIELDREP_RETURN_IF_ERROR(DecodePredicate(reader, &stmt->predicate));
  std::string flags;
  if (!reader->GetRaw(2, &flags) || !reader->GetU32(&stmt->output_pad)) {
    return Status::Corruption("truncated read statement flags");
  }
  stmt->use_replication = flags[0] != 0;
  stmt->write_output = flags[1] != 0;
  return Status::OK();
}

void EncodeUpdateStatement(const UpdateStatement& stmt, std::string* out) {
  PutLengthPrefixed(out, stmt.set_name);
  EncodePredicate(stmt.predicate, out);
  PutU16(out, static_cast<uint16_t>(stmt.assignments.size()));
  for (const auto& [attr, operand] : stmt.assignments) {
    PutLengthPrefixed(out, attr);
    EncodeOperand(operand, out);
  }
}

Status DecodeUpdateStatement(ByteReader* reader, UpdateStatement* stmt) {
  if (!reader->GetLengthPrefixed(&stmt->set_name)) {
    return Status::Corruption("truncated update statement");
  }
  FIELDREP_RETURN_IF_ERROR(DecodePredicate(reader, &stmt->predicate));
  uint16_t n_assign;
  if (!reader->GetU16(&n_assign)) {
    return Status::Corruption("truncated assignment count");
  }
  stmt->assignments.clear();
  stmt->assignments.reserve(n_assign);
  for (uint16_t i = 0; i < n_assign; ++i) {
    std::string attr;
    WireOperand operand;
    if (!reader->GetLengthPrefixed(&attr)) {
      return Status::Corruption("truncated assignment");
    }
    FIELDREP_RETURN_IF_ERROR(DecodeOperand(reader, &operand));
    stmt->assignments.emplace_back(std::move(attr), std::move(operand));
  }
  return Status::OK();
}

// --- Results ------------------------------------------------------------------

void EncodeReadResult(const ReadResult& result, std::string* out) {
  PutU32(out, static_cast<uint32_t>(result.rows.size()));
  for (const std::vector<Value>& row : result.rows) {
    PutU16(out, static_cast<uint16_t>(row.size()));
    for (const Value& v : row) EncodeTaggedValue(v, out);
  }
  PutU64(out, result.rows_written);
  PutU64(out, result.heads_scanned);
  out->push_back(result.used_index ? 1 : 0);
  PutU16(out, static_cast<uint16_t>(result.access.size()));
  for (ReadResult::Access a : result.access) {
    out->push_back(static_cast<char>(a));
  }
}

Status DecodeReadResult(ByteReader* reader, ReadResult* result) {
  uint32_t n_rows;
  if (!reader->GetU32(&n_rows)) {
    return Status::Corruption("truncated result row count");
  }
  result->rows.clear();
  for (uint32_t i = 0; i < n_rows; ++i) {
    uint16_t n_values;
    if (!reader->GetU16(&n_values)) {
      return Status::Corruption("truncated result row");
    }
    std::vector<Value> row;
    row.reserve(n_values);
    for (uint16_t j = 0; j < n_values; ++j) {
      Value v;
      FIELDREP_RETURN_IF_ERROR(DecodeTaggedValue(reader, &v));
      row.push_back(std::move(v));
    }
    result->rows.push_back(std::move(row));
  }
  std::string used_index;
  uint16_t n_access;
  if (!reader->GetU64(&result->rows_written) ||
      !reader->GetU64(&result->heads_scanned) ||
      !reader->GetRaw(1, &used_index) || !reader->GetU16(&n_access)) {
    return Status::Corruption("truncated result counters");
  }
  result->used_index = used_index[0] != 0;
  result->access.clear();
  result->access.reserve(n_access);
  for (uint16_t i = 0; i < n_access; ++i) {
    std::string a;
    if (!reader->GetRaw(1, &a)) {
      return Status::Corruption("truncated access list");
    }
    if (static_cast<uint8_t>(a[0]) >
        static_cast<uint8_t>(ReadResult::Access::kJoin)) {
      return Status::Corruption("bad access kind");
    }
    result->access.push_back(static_cast<ReadResult::Access>(a[0]));
  }
  return Status::OK();
}

void EncodeUpdateResult(const UpdateResult& result, std::string* out) {
  PutU64(out, result.objects_updated);
  out->push_back(result.used_index ? 1 : 0);
}

Status DecodeUpdateResult(ByteReader* reader, UpdateResult* result) {
  std::string used_index;
  if (!reader->GetU64(&result->objects_updated) ||
      !reader->GetRaw(1, &used_index)) {
    return Status::Corruption("truncated update result");
  }
  result->used_index = used_index[0] != 0;
  return Status::OK();
}

void EncodeErrorPayload(const Status& status, std::string* out) {
  PutU16(out, static_cast<uint16_t>(status.code()));
  PutLengthPrefixed(out, status.message());
}

Status DecodeErrorPayload(ByteReader* reader, Status* status) {
  uint16_t code;
  std::string message;
  if (!reader->GetU16(&code) || !reader->GetLengthPrefixed(&message)) {
    return Status::Corruption("truncated error payload");
  }
  if (code > static_cast<uint16_t>(StatusCode::kAborted)) {
    return Status::Corruption("bad status code in error payload");
  }
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

// --- Catalog summary ----------------------------------------------------------

void EncodeCatalogInfo(const CatalogInfo& info, std::string* out) {
  PutU16(out, static_cast<uint16_t>(info.sets.size()));
  for (const CatalogInfo::Set& set : info.sets) {
    PutLengthPrefixed(out, set.name);
    PutLengthPrefixed(out, set.type_name);
    PutU16(out, static_cast<uint16_t>(set.attributes.size()));
    for (const CatalogInfo::Attr& attr : set.attributes) {
      PutLengthPrefixed(out, attr.name);
      out->push_back(static_cast<char>(attr.type));
      PutU32(out, attr.char_length);
      PutLengthPrefixed(out, attr.ref_type);
    }
  }
  PutU16(out, static_cast<uint16_t>(info.replicated_paths.size()));
  for (const std::string& spec : info.replicated_paths) {
    PutLengthPrefixed(out, spec);
  }
}

Status DecodeCatalogInfo(ByteReader* reader, CatalogInfo* info) {
  uint16_t n_sets;
  if (!reader->GetU16(&n_sets)) {
    return Status::Corruption("truncated catalog info");
  }
  info->sets.clear();
  for (uint16_t i = 0; i < n_sets; ++i) {
    CatalogInfo::Set set;
    uint16_t n_attrs;
    if (!reader->GetLengthPrefixed(&set.name) ||
        !reader->GetLengthPrefixed(&set.type_name) ||
        !reader->GetU16(&n_attrs)) {
      return Status::Corruption("truncated catalog set");
    }
    for (uint16_t j = 0; j < n_attrs; ++j) {
      CatalogInfo::Attr attr;
      std::string type_byte;
      if (!reader->GetLengthPrefixed(&attr.name) ||
          !reader->GetRaw(1, &type_byte) ||
          !reader->GetU32(&attr.char_length) ||
          !reader->GetLengthPrefixed(&attr.ref_type)) {
        return Status::Corruption("truncated catalog attribute");
      }
      if (static_cast<uint8_t>(type_byte[0]) >
          static_cast<uint8_t>(FieldType::kRef)) {
        return Status::Corruption("bad field type in catalog info");
      }
      attr.type = static_cast<FieldType>(type_byte[0]);
      set.attributes.push_back(std::move(attr));
    }
    info->sets.push_back(std::move(set));
  }
  uint16_t n_paths;
  if (!reader->GetU16(&n_paths)) {
    return Status::Corruption("truncated catalog path list");
  }
  info->replicated_paths.clear();
  for (uint16_t i = 0; i < n_paths; ++i) {
    std::string spec;
    if (!reader->GetLengthPrefixed(&spec)) {
      return Status::Corruption("truncated catalog path");
    }
    info->replicated_paths.push_back(std::move(spec));
  }
  return Status::OK();
}

// --- Sockets ------------------------------------------------------------------

namespace {

/// Splits "unix:/path" / "tcp:port" / "tcp:host:port". Returns false on
/// an unrecognized scheme.
bool ParseAddress(const std::string& address, bool* is_unix,
                  std::string* path_or_host, int* port) {
  if (address.rfind("unix:", 0) == 0) {
    *is_unix = true;
    *path_or_host = address.substr(5);
    return !path_or_host->empty();
  }
  if (address.rfind("tcp:", 0) == 0) {
    *is_unix = false;
    std::string rest = address.substr(4);
    size_t colon = rest.rfind(':');
    if (colon == std::string::npos) {
      *path_or_host = "127.0.0.1";
      *port = std::atoi(rest.c_str());
    } else {
      *path_or_host = rest.substr(0, colon);
      *port = std::atoi(rest.c_str() + colon + 1);
    }
    return *port >= 0 && *port <= 65535;
  }
  return false;
}

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

}  // namespace

Result<int> ListenOn(const std::string& address, int backlog) {
  bool is_unix = false;
  std::string host;
  int port = 0;
  if (!ParseAddress(address, &is_unix, &host, &port)) {
    return Status::InvalidArgument("bad listen address: " + address +
                                   " (want unix:/path or tcp:port)");
  }
  if (is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (host.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + host);
    }
    std::memcpy(addr.sun_path, host.c_str(), host.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    ::unlink(host.c_str());
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        ::listen(fd, backlog) < 0) {
      Status s = Errno("bind/listen " + address);
      ::close(fd);
      return s;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, backlog) < 0) {
    Status s = Errno("bind/listen " + address);
    ::close(fd);
    return s;
  }
  return fd;
}

Result<std::string> BoundAddress(int listen_fd, const std::string& address) {
  if (address.rfind("unix:", 0) == 0) return address;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  return StringPrintf("tcp:%u", ntohs(addr.sin_port));
}

Result<int> ConnectTo(const std::string& address) {
  bool is_unix = false;
  std::string host;
  int port = 0;
  if (!ParseAddress(address, &is_unix, &host, &port)) {
    return Status::InvalidArgument("bad connect address: " + address);
  }
  if (is_unix) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (host.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + host);
    }
    std::memcpy(addr.sun_path, host.c_str(), host.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Status s = Errno("connect " + address);
      ::close(fd);
      return s;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host (want a dotted IPv4): " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status s = Errno("connect " + address);
    ::close(fd);
    return s;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status WriteFully(int fd, const void* data, size_t size, int timeout_ms) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t remaining = size;
  while (remaining > 0) {
    ssize_t n = ::send(fd, p, remaining, MSG_NOSIGNAL);
    if (n > 0) {
      p += n;
      remaining -= static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      int r = ::poll(&pfd, 1, timeout_ms == 0 ? -1 : timeout_ms);
      if (r == 0) {
        return Status::IOError("write timed out (slow or dead peer)");
      }
      if (r < 0 && errno != EINTR) return Errno("poll");
      continue;
    }
    return Errno("send");
  }
  return Status::OK();
}

Status ReadFrameBlocking(int fd, std::string* buffer, Frame* frame) {
  for (;;) {
    bool complete = false;
    FIELDREP_RETURN_IF_ERROR(TryParseFrame(buffer, frame, &complete));
    if (complete) return Status::OK();
    char chunk[16384];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer->append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      if (buffer->empty()) return Status::NotFound("connection closed");
      return Status::Corruption("connection closed mid-frame");
    }
    return Errno("recv");
  }
}

Status WriteFrame(int fd, const Frame& frame, int timeout_ms) {
  std::string wire;
  EncodeFrame(frame, &wire);
  return WriteFully(fd, wire.data(), wire.size(), timeout_ms);
}

}  // namespace fieldrep::net
