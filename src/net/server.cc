#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "common/bytes.h"

namespace fieldrep::net {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void NetMetrics::Collect(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  add("fieldrep_net_sessions_total", "Client sessions accepted.",
      MetricKind::kCounter, static_cast<double>(sessions_accepted.load()));
  add("fieldrep_net_sessions_refused_total",
      "Connections refused by admission control.", MetricKind::kCounter,
      static_cast<double>(sessions_refused.load()));
  add("fieldrep_net_sessions", "Currently connected sessions.",
      MetricKind::kGauge, static_cast<double>(sessions_active.load()));
  add("fieldrep_net_requests_total", "Requests executed.",
      MetricKind::kCounter, static_cast<double>(requests.load()));
  add("fieldrep_net_rejected_total",
      "Requests rejected by pipeline backpressure.", MetricKind::kCounter,
      static_cast<double>(rejected.load()));
  add("fieldrep_net_protocol_errors_total",
      "Malformed frames (bad magic/version/length).", MetricKind::kCounter,
      static_cast<double>(protocol_errors.load()));
  add("fieldrep_net_pending_requests", "Requests queued but not dispatched.",
      MetricKind::kGauge, static_cast<double>(pending.load()));
  add("fieldrep_net_parks_total",
      "Statements parked on a write-lock conflict.", MetricKind::kCounter,
      static_cast<double>(parks.load()));
  add("fieldrep_net_txn_aborts_total",
      "Transactions aborted by wait-or-die deadlock avoidance.",
      MetricKind::kCounter, static_cast<double>(txn_aborts.load()));
  MetricSample lat;
  lat.name = "fieldrep_net_request_ns";
  lat.help = "Per-request server-side latency, nanoseconds.";
  lat.kind = MetricKind::kHistogram;
  lat.histogram = request_ns.TakeSnapshot();
  out->push_back(std::move(lat));
}

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server());
  server->db_ = db;
  server->options_ = options;
  if (server->options_.worker_threads == 0) server->options_.worker_threads = 1;
  if (server->options_.max_pipeline == 0) server->options_.max_pipeline = 1;
  FIELDREP_ASSIGN_OR_RETURN(server->listen_fd_, ListenOn(options.address));
  FIELDREP_ASSIGN_OR_RETURN(
      server->address_, BoundAddress(server->listen_fd_, options.address));
  SetNonBlocking(server->listen_fd_);
  if (::pipe(server->wake_fds_) != 0) {
    ::close(server->listen_fd_);
    server->listen_fd_ = -1;
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  SetNonBlocking(server->wake_fds_[0]);
  SetNonBlocking(server->wake_fds_[1]);
  server->metrics_ = std::make_shared<NetMetrics>();
  if (db->metrics() != nullptr) {
    std::shared_ptr<NetMetrics> m = server->metrics_;
    db->metrics()->AddCollector(
        [m](std::vector<MetricSample>* out) { m->Collect(out); });
  }
  server->workers_ =
      std::make_unique<ThreadPool>(server->options_.worker_threads);
  server->event_thread_ = std::thread([raw = server.get()] {
    raw->EventLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    for (auto& [id, s] : sessions_) {
      s->closing = true;
      // Unblocks any worker mid-write to this peer and makes further
      // reads return EOF.
      ::shutdown(s->fd, SHUT_RDWR);
    }
  }
  Wake();
  if (event_thread_.joinable()) event_thread_.join();
  // Joins the workers; the pool drains its queue first, so every
  // dispatched session finishes its cleanup.
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (address_.rfind("unix:", 0) == 0) {
    ::unlink(address_.substr(5).c_str());
  }
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
    (void)ignored;
  }
}

void Server::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> polled;
  for (;;) {
    fds.clear();
    polled.clear();
    bool accepting = false;
    {
      MutexLock lock(mu_);
      // Tear down sessions nobody is working on, then drop the dead.
      for (auto& [id, s] : sessions_) {
        if (s->closing && !s->busy && !s->dead) CleanupSessionLocked(s);
      }
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second->dead && !it->second->busy) {
          ::close(it->second->fd);
          metrics_->sessions_active.fetch_sub(1);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
      if (stopping_ && sessions_.empty()) return;
      // Liveness backstop for parked sessions: lock releases by paths
      // the server cannot observe (embedded writers sharing the
      // database) would otherwise never redispatch them. A spurious
      // retry just parks again.
      WakeParkedLocked();
      const bool flow_controlled =
          pending_requests_ >= options_.max_pending_requests;
      fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
      if (!stopping_) {
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        accepting = true;
      }
      if (!flow_controlled) {
        for (auto& [id, s] : sessions_) {
          if (s->closing || s->dead) continue;
          fds.push_back(pollfd{s->fd, POLLIN, 0});
          polled.push_back(s);
        }
      }
    }
    // Bounded timeout: flow-control release and worker retirements can
    // race the wake pipe, so never sleep unboundedly.
    int r = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) {
      char drain[256];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (accepting && fds[1].revents != 0) AcceptConnections();
    const size_t base = accepting ? 2 : 1;
    for (size_t i = 0; i < polled.size(); ++i) {
      if (fds[base + i].revents == 0) continue;
      if (!ReadSession(polled[i])) {
        MutexLock lock(mu_);
        polled[i]->closing = true;
        if (!polled[i]->busy) CleanupSessionLocked(polled[i]);
      }
    }
  }
}

void Server::AcceptConnections() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error; poll again.
    }
    SetNonBlocking(fd);
    MutexLock lock(mu_);
    if (stopping_ || sessions_.size() >= options_.max_sessions) {
      metrics_->sessions_refused.fetch_add(1);
      // Best-effort structured refusal so the client sees kUnavailable
      // instead of a bare hangup.
      Frame err = ErrorFrame(
          0, Status::Unavailable(stopping_ ? "server shutting down"
                                           : "server at max sessions"));
      std::string wire;
      EncodeFrame(err, &wire);
      ssize_t ignored = ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      (void)ignored;
      ::close(fd);
      continue;
    }
    auto s = std::make_shared<Session>();
    s->id = next_session_id_++;
    s->fd = fd;
    sessions_.emplace(s->id, s);
    metrics_->sessions_accepted.fetch_add(1);
    metrics_->sessions_active.fetch_add(1);
  }
}

bool Server::ReadSession(const std::shared_ptr<Session>& s) {
  char chunk[16384];
  for (;;) {
    ssize_t n = ::recv(s->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      s->in_buf.append(chunk, static_cast<size_t>(n));
      for (;;) {
        Frame frame;
        bool complete = false;
        Status st = TryParseFrame(&s->in_buf, &frame, &complete);
        if (!st.ok()) {
          // Bad magic / version / length: the stream is unrecoverable.
          // Answer with a structured error, then drop the session.
          metrics_->protocol_errors.fetch_add(1);
          WriteReply(s, ErrorFrame(s->id, st));
          return false;
        }
        if (!complete) break;
        EnqueueFrame(s, std::move(frame));
      }
      continue;
    }
    if (n == 0) return false;  // EOF (possibly mid-frame); tear down.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void Server::EnqueueFrame(const std::shared_ptr<Session>& s, Frame frame) {
  MutexLock lock(mu_);
  if (s->closing || s->dead) return;
  QueuedRequest req;
  req.frame = std::move(frame);
  if (s->queue.size() >= options_.max_pipeline) {
    // Over the per-session bound: keep the slot so the reply goes out in
    // FIFO order, but never execute it.
    req.rejected = true;
    metrics_->rejected.fetch_add(1);
  }
  s->queue.push_back(std::move(req));
  ++pending_requests_;
  metrics_->pending.store(static_cast<int64_t>(pending_requests_));
  // Parked sessions resume through WakeParked, with their parked
  // statement still at the queue front.
  if (!s->busy && !s->parked) {
    s->busy = true;
    std::shared_ptr<Session> sp = s;
    workers_->Submit([this, sp] { ProcessSession(sp); });
  }
}

void Server::ParkSession(const std::shared_ptr<Session>& s, Frame&& request) {
  metrics_->parks.fetch_add(1);
  MutexLock lock(mu_);
  QueuedRequest req;
  req.frame = std::move(request);
  s->queue.push_front(std::move(req));
  ++pending_requests_;
  metrics_->pending.store(static_cast<int64_t>(pending_requests_));
  // parked+!busy atomically: a concurrent WakeParkedLocked may redispatch
  // this session immediately; the old worker is unwinding and touches
  // nothing afterwards.
  s->parked = true;
  s->busy = false;
}

void Server::WakeParkedLocked() {
  for (auto& [id, s] : sessions_) {
    if (!s->parked || s->busy || s->dead || s->closing) continue;
    s->parked = false;
    s->busy = true;
    std::shared_ptr<Session> sp = s;
    workers_->Submit([this, sp] { ProcessSession(sp); });
  }
}

void Server::WakeParked() {
  MutexLock lock(mu_);
  WakeParkedLocked();
}

void Server::CleanupSessionLocked(const std::shared_ptr<Session>& s) {
  if (s->dead) return;
  s->closing = true;
  if (s->txn != nullptr) {
    // Abort-on-disconnect: the session died with a transaction open — an
    // explicit bracket, or an implicit statement parked on a conflict.
    // Attach it here and abort, releasing exactly this session's locks
    // (other sessions' transactions are untouched), then give parked
    // writers a chance at the freed locks.
    db_->AttachSessionTransaction(s->txn);
    s->txn = nullptr;
    db_->AbortSessionTransaction();
    s->txn_open = false;
    WakeParkedLocked();
  }
  if (s->parked) s->parked = false;
  pending_requests_ -= s->queue.size();
  metrics_->pending.store(static_cast<int64_t>(pending_requests_));
  s->queue.clear();
  s->dead = true;
  ::shutdown(s->fd, SHUT_RDWR);
  Wake();
}

void Server::ProcessSession(std::shared_ptr<Session> s) {
  for (;;) {
    QueuedRequest req;
    {
      MutexLock lock(mu_);
      if (s->closing) {
        s->busy = false;
        CleanupSessionLocked(s);
        return;
      }
      if (s->queue.empty()) {
        s->busy = false;
        return;
      }
      req = std::move(s->queue.front());
      s->queue.pop_front();
      --pending_requests_;
      metrics_->pending.store(static_cast<int64_t>(pending_requests_));
    }
    if (req.rejected) {
      WriteReply(s, ErrorFrame(s->id, Status::Unavailable(
                                          "session pipeline full; retry")));
      continue;
    }
    const uint64_t start_ns = NowNs();
    const HandleOutcome outcome = HandleRequest(s, req.frame);
    if (outcome == HandleOutcome::kParked) return;  // ParkSession unset busy.
    metrics_->request_ns.Observe(NowNs() - start_ns);
    metrics_->requests.fetch_add(1);
    if (outcome == HandleOutcome::kClose) {
      MutexLock lock(mu_);
      s->busy = false;
      CleanupSessionLocked(s);
      return;
    }
  }
}

Server::HandleOutcome Server::HandleRequest(const std::shared_ptr<Session>& s,
                                            Frame& request) {
  const Opcode op = static_cast<Opcode>(request.opcode);
  bool parked = false;
  Frame reply = Dispatch(s, request, &parked);
  if (parked) return HandleOutcome::kParked;
  const bool wrote = WriteReply(s, reply);
  return (wrote && op != Opcode::kGoodbye) ? HandleOutcome::kContinue
                                           : HandleOutcome::kClose;
}

Frame Server::OkFrame(uint64_t session_id, std::string payload) const {
  Frame f;
  f.opcode = static_cast<uint16_t>(Opcode::kOk);
  f.session_id = session_id;
  f.payload = std::move(payload);
  return f;
}

Frame Server::ErrorFrame(uint64_t session_id, const Status& status) const {
  Frame f;
  f.opcode = static_cast<uint16_t>(Opcode::kError);
  f.session_id = session_id;
  EncodeErrorPayload(status, &f.payload);
  return f;
}

bool Server::WriteReply(const std::shared_ptr<Session>& s,
                        const Frame& reply) {
  MutexLock lock(s->write_mu);
  return WriteFrame(s->fd, reply, options_.write_timeout_ms).ok();
}

namespace {

/// Decodes the kExecute payload: u32 stmt id, u16 count, tagged values.
Status DecodeExecute(const std::string& payload, uint32_t* stmt_id,
                     std::vector<Value>* params) {
  ByteReader reader(payload);
  uint16_t count = 0;
  if (!reader.GetU32(stmt_id) || !reader.GetU16(&count)) {
    return Status::Corruption("truncated execute payload");
  }
  params->clear();
  params->reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Value v;
    FIELDREP_RETURN_IF_ERROR(DecodeTaggedValue(&reader, &v));
    params->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace

Frame Server::RunMutation(const std::shared_ptr<Session>& s, Frame& request,
                          const UpdateQuery& bound, bool* parked) {
  *parked = false;
  if (db_->wal() == nullptr && !s->txn_open) {
    // Unlogged database: explicit transactions are impossible (Begin
    // requires WAL), so every lock holder is a live worker and the
    // blocking acquisition inside Replace cannot starve the pool.
    UpdateResult result;
    Status st = db_->Replace(bound, &result);
    if (!st.ok()) return ErrorFrame(s->id, st);
    std::string payload(1, static_cast<char>(kResultKindUpdate));
    EncodeUpdateResult(result, &payload);
    return OkFrame(s->id, std::move(payload));
  }

  const bool implicit = !s->txn_open;
  if (s->txn != nullptr) {
    // Resume: the explicit bracket, or an implicit transaction parked
    // earlier (it kept the locks it already won).
    db_->AttachSessionTransaction(s->txn);
    s->txn = nullptr;
  } else {
    Status st = db_->BeginSessionTransaction();
    if (!st.ok()) return ErrorFrame(s->id, st);
  }

  LockTable::TryOutcome outcome = LockTable::TryOutcome::kAcquired;
  Status st = db_->TryLockSetForWrite(&bound.set_name, &outcome);
  if (st.ok() && outcome == LockTable::TryOutcome::kWouldBlock) {
    // Park: keep the transaction (and any locks it holds — requests are
    // made in ascending lock-id order, so the parked waits-for graph is
    // acyclic) and retry when a writer finishes.
    s->txn = db_->DetachSessionTransaction();
    ParkSession(s, std::move(request));
    *parked = true;
    return Frame{};
  }
  if (st.ok() && outcome == LockTable::TryOutcome::kMustAbort) {
    // Wait-or-die: waiting here could close a deadlock cycle, so the
    // transaction dies. Strict 2PL cannot release one statement's locks,
    // so even an explicit bracket aborts whole; the client retries.
    metrics_->txn_aborts.fetch_add(1);
    st = Status::Aborted(
        "write-lock conflict aborted the transaction; retry it");
    (void)db_->AbortSessionTransaction();
    s->txn_open = false;
    WakeParked();
    return ErrorFrame(s->id, st);
  }
  if (!st.ok()) {
    // Lock-closure failure (e.g. no such set): the statement fails but
    // the transaction survives, as for any failed statement below.
    if (implicit) {
      (void)db_->AbortSessionTransaction();
      WakeParked();
    } else {
      s->txn = db_->DetachSessionTransaction();
    }
    return ErrorFrame(s->id, st);
  }

  UpdateResult result;
  st = db_->Replace(bound, &result);
  if (implicit) {
    uint64_t commit_lsn = 0;
    if (st.ok()) {
      st = db_->CommitSessionTransaction(&commit_lsn);
    } else {
      (void)db_->AbortSessionTransaction();
    }
    // Locks are released; let parked writers at them before waiting on
    // durability, so concurrent commits batch behind one leader fsync.
    WakeParked();
    if (st.ok()) st = db_->WaitWalDurable(commit_lsn);
  } else {
    s->txn = db_->DetachSessionTransaction();
  }
  if (!st.ok()) return ErrorFrame(s->id, st);
  std::string payload(1, static_cast<char>(kResultKindUpdate));
  EncodeUpdateResult(result, &payload);
  return OkFrame(s->id, std::move(payload));
}

Frame Server::Dispatch(const std::shared_ptr<Session>& s, Frame& request,
                       bool* parked) {
  *parked = false;
  const Opcode op = static_cast<Opcode>(request.opcode);
  if (request.session_id != 0 && request.session_id != s->id) {
    return ErrorFrame(s->id,
                      Status::InvalidArgument("frame session id mismatch"));
  }
  if (!s->handshaken && op != Opcode::kHandshake) {
    return ErrorFrame(
        s->id, Status::FailedPrecondition("handshake required first"));
  }

  switch (op) {
    case Opcode::kHandshake: {
      s->handshaken = true;
      std::string payload;
      PutU64(&payload, s->id);
      PutU16(&payload, kProtocolVersion);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kPrepareRead: {
      ByteReader reader(request.payload);
      PreparedStatement stmt;
      Status st = DecodeReadStatement(&reader, &stmt.read);
      if (!st.ok()) return ErrorFrame(s->id, st);
      stmt.param_count = stmt.read.ParamCount();
      const uint32_t id = s->next_stmt_id++;
      std::string payload;
      PutU32(&payload, id);
      PutU16(&payload, stmt.param_count);
      s->statements.emplace(id, std::move(stmt));
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kPrepareUpdate: {
      ByteReader reader(request.payload);
      PreparedStatement stmt;
      stmt.is_update = true;
      Status st = DecodeUpdateStatement(&reader, &stmt.update);
      if (!st.ok()) return ErrorFrame(s->id, st);
      stmt.param_count = stmt.update.ParamCount();
      const uint32_t id = s->next_stmt_id++;
      std::string payload;
      PutU32(&payload, id);
      PutU16(&payload, stmt.param_count);
      s->statements.emplace(id, std::move(stmt));
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kCloseStatement: {
      ByteReader reader(request.payload);
      uint32_t stmt_id = 0;
      if (!reader.GetU32(&stmt_id)) {
        return ErrorFrame(s->id,
                          Status::Corruption("truncated close payload"));
      }
      if (s->statements.erase(stmt_id) == 0) {
        return ErrorFrame(s->id, Status::NotFound("no such statement"));
      }
      return OkFrame(s->id, "");
    }
    case Opcode::kExecute: {
      uint32_t stmt_id = 0;
      std::vector<Value> params;
      Status st = DecodeExecute(request.payload, &stmt_id, &params);
      if (!st.ok()) return ErrorFrame(s->id, st);
      auto it = s->statements.find(stmt_id);
      if (it == s->statements.end()) {
        return ErrorFrame(s->id, Status::NotFound("no such statement"));
      }
      PreparedStatement& stmt = it->second;
      ++stmt.uses;
      if (stmt.is_update) {
        auto bound = stmt.update.Bind(params);
        if (!bound.ok()) return ErrorFrame(s->id, bound.status());
        return RunMutation(s, request, *bound, parked);
      }
      auto bound = stmt.read.Bind(params);
      if (!bound.ok()) return ErrorFrame(s->id, bound.status());
      ReadResult result;
      st = db_->Retrieve(*bound, &result);
      if (!st.ok()) return ErrorFrame(s->id, st);
      std::string payload(1, static_cast<char>(kResultKindRead));
      EncodeReadResult(result, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kRetrieve: {
      ByteReader reader(request.payload);
      ReadStatement stmt;
      Status st = DecodeReadStatement(&reader, &stmt);
      if (!st.ok()) return ErrorFrame(s->id, st);
      auto bound = stmt.Bind({});
      if (!bound.ok()) return ErrorFrame(s->id, bound.status());
      ReadResult result;
      st = db_->Retrieve(*bound, &result);
      if (!st.ok()) return ErrorFrame(s->id, st);
      std::string payload(1, static_cast<char>(kResultKindRead));
      EncodeReadResult(result, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kReplace: {
      ByteReader reader(request.payload);
      UpdateStatement stmt;
      Status st = DecodeUpdateStatement(&reader, &stmt);
      if (!st.ok()) return ErrorFrame(s->id, st);
      auto bound = stmt.Bind({});
      if (!bound.ok()) return ErrorFrame(s->id, bound.status());
      return RunMutation(s, request, *bound, parked);
    }
    case Opcode::kBegin: {
      if (s->txn_open) {
        return ErrorFrame(
            s->id, Status::FailedPrecondition("transaction already open"));
      }
      Status st = db_->BeginSessionTransaction();
      if (!st.ok()) return ErrorFrame(s->id, st);
      // The bracket starts with no locks; statements take theirs as they
      // arrive. Detach so other workers (and disconnect cleanup) can
      // pick the session up.
      s->txn = db_->DetachSessionTransaction();
      s->txn_open = true;
      return OkFrame(s->id, "");
    }
    case Opcode::kCommit: {
      if (!s->txn_open) {
        return ErrorFrame(s->id,
                          Status::FailedPrecondition("commit without begin"));
      }
      db_->AttachSessionTransaction(s->txn);
      s->txn = nullptr;
      uint64_t commit_lsn = 0;
      Status st = db_->CommitSessionTransaction(&commit_lsn);
      s->txn_open = false;
      // Locks released — wake parked writers before the durability wait
      // so their commits can join this group-commit batch.
      WakeParked();
      if (st.ok()) st = db_->WaitWalDurable(commit_lsn);
      if (!st.ok()) return ErrorFrame(s->id, st);
      return OkFrame(s->id, "");
    }
    case Opcode::kAbort: {
      if (!s->txn_open) {
        return ErrorFrame(s->id,
                          Status::FailedPrecondition("abort without begin"));
      }
      db_->AttachSessionTransaction(s->txn);
      s->txn = nullptr;
      Status st = db_->AbortSessionTransaction();
      s->txn_open = false;
      WakeParked();
      if (!st.ok()) return ErrorFrame(s->id, st);
      return OkFrame(s->id, "");
    }
    case Opcode::kMetrics: {
      ByteReader reader(request.payload);
      std::string format;
      if (!reader.GetLengthPrefixed(&format)) format = "prometheus";
      if (db_->metrics() == nullptr) {
        return ErrorFrame(
            s->id, Status::FailedPrecondition("telemetry is disabled"));
      }
      std::string text;
      if (format == "json") {
        text = db_->MetricsJson();
      } else if (format == "prometheus" || format.empty()) {
        text = db_->MetricsPrometheus();
      } else {
        return ErrorFrame(s->id, Status::InvalidArgument(
                                     "unknown metrics format: " + format));
      }
      std::string payload;
      PutLengthPrefixed(&payload, text);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kCatalog: {
      CatalogInfo info;
      const Catalog& catalog = db_->catalog();
      for (const std::string& set_name : catalog.SetNames()) {
        auto set_info = catalog.GetSet(set_name);
        if (!set_info.ok()) continue;
        CatalogInfo::Set set;
        set.name = set_name;
        set.type_name = (*set_info)->type_name;
        auto type = catalog.GetType(set.type_name);
        if (type.ok()) {
          for (const AttributeDescriptor& attr : (*type)->attributes()) {
            CatalogInfo::Attr a;
            a.name = attr.name;
            a.type = attr.type;
            a.char_length = attr.char_length;
            a.ref_type = attr.ref_type;
            set.attributes.push_back(std::move(a));
          }
        }
        info.sets.push_back(std::move(set));
      }
      for (uint16_t path_id : catalog.AllPathIds()) {
        const ReplicationPathInfo* path = catalog.GetPath(path_id);
        if (path != nullptr) info.replicated_paths.push_back(path->spec);
      }
      std::string payload;
      EncodeCatalogInfo(info, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kGoodbye:
      return OkFrame(s->id, "");
    default:
      return ErrorFrame(
          s->id, Status::InvalidArgument("unknown opcode " +
                                         std::to_string(request.opcode)));
  }
}

}  // namespace fieldrep::net
