#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "common/bytes.h"

namespace fieldrep::net {

namespace {

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

void NetMetrics::Collect(std::vector<MetricSample>* out) const {
  auto add = [out](const char* name, const char* help, MetricKind kind,
                   double value) {
    MetricSample s;
    s.name = name;
    s.help = help;
    s.kind = kind;
    s.value = value;
    out->push_back(std::move(s));
  };
  add("fieldrep_net_sessions_total", "Client sessions accepted.",
      MetricKind::kCounter, static_cast<double>(sessions_accepted.load()));
  add("fieldrep_net_sessions_refused_total",
      "Connections refused by admission control.", MetricKind::kCounter,
      static_cast<double>(sessions_refused.load()));
  add("fieldrep_net_sessions", "Currently connected sessions.",
      MetricKind::kGauge, static_cast<double>(sessions_active.load()));
  add("fieldrep_net_requests_total", "Requests executed.",
      MetricKind::kCounter, static_cast<double>(requests.load()));
  add("fieldrep_net_rejected_total",
      "Requests rejected by pipeline backpressure.", MetricKind::kCounter,
      static_cast<double>(rejected.load()));
  add("fieldrep_net_protocol_errors_total",
      "Malformed frames (bad magic/version/length).", MetricKind::kCounter,
      static_cast<double>(protocol_errors.load()));
  add("fieldrep_net_pending_requests", "Requests queued but not dispatched.",
      MetricKind::kGauge, static_cast<double>(pending.load()));
  MetricSample lat;
  lat.name = "fieldrep_net_request_ns";
  lat.help = "Per-request server-side latency, nanoseconds.";
  lat.kind = MetricKind::kHistogram;
  lat.histogram = request_ns.TakeSnapshot();
  out->push_back(std::move(lat));
}

Result<std::unique_ptr<Server>> Server::Start(Database* db,
                                              const ServerOptions& options) {
  std::unique_ptr<Server> server(new Server());
  server->db_ = db;
  server->options_ = options;
  if (server->options_.worker_threads == 0) server->options_.worker_threads = 1;
  if (server->options_.max_pipeline == 0) server->options_.max_pipeline = 1;
  FIELDREP_ASSIGN_OR_RETURN(server->listen_fd_, ListenOn(options.address));
  FIELDREP_ASSIGN_OR_RETURN(
      server->address_, BoundAddress(server->listen_fd_, options.address));
  SetNonBlocking(server->listen_fd_);
  if (::pipe(server->wake_fds_) != 0) {
    ::close(server->listen_fd_);
    server->listen_fd_ = -1;
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  SetNonBlocking(server->wake_fds_[0]);
  SetNonBlocking(server->wake_fds_[1]);
  server->metrics_ = std::make_shared<NetMetrics>();
  if (db->metrics() != nullptr) {
    std::shared_ptr<NetMetrics> m = server->metrics_;
    db->metrics()->AddCollector(
        [m](std::vector<MetricSample>* out) { m->Collect(out); });
  }
  server->workers_ =
      std::make_unique<ThreadPool>(server->options_.worker_threads);
  server->event_thread_ = std::thread([raw = server.get()] {
    raw->EventLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stopped_.exchange(true)) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
    for (auto& [id, s] : sessions_) {
      s->closing = true;
      // Unblocks any worker mid-write to this peer and makes further
      // reads return EOF.
      ::shutdown(s->fd, SHUT_RDWR);
    }
  }
  Wake();
  if (event_thread_.joinable()) event_thread_.join();
  // Joins the workers; the pool drains its queue first, so every
  // dispatched session finishes its cleanup.
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  if (address_.rfind("unix:", 0) == 0) {
    ::unlink(address_.substr(5).c_str());
  }
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    char byte = 1;
    ssize_t ignored = ::write(wake_fds_[1], &byte, 1);
    (void)ignored;
  }
}

void Server::EventLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Session>> polled;
  for (;;) {
    fds.clear();
    polled.clear();
    bool accepting = false;
    {
      MutexLock lock(mu_);
      // Tear down sessions nobody is working on, then drop the dead.
      for (auto& [id, s] : sessions_) {
        if (s->closing && !s->busy && !s->dead) CleanupSessionLocked(s);
      }
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->second->dead && !it->second->busy) {
          ::close(it->second->fd);
          metrics_->sessions_active.fetch_sub(1);
          it = sessions_.erase(it);
        } else {
          ++it;
        }
      }
      if (stopping_ && sessions_.empty()) return;
      const bool flow_controlled =
          pending_requests_ >= options_.max_pending_requests;
      fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
      if (!stopping_) {
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
        accepting = true;
      }
      if (!flow_controlled) {
        for (auto& [id, s] : sessions_) {
          if (s->closing || s->dead) continue;
          fds.push_back(pollfd{s->fd, POLLIN, 0});
          polled.push_back(s);
        }
      }
    }
    // Bounded timeout: flow-control release and worker retirements can
    // race the wake pipe, so never sleep unboundedly.
    int r = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 100);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[0].revents != 0) {
      char drain[256];
      while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (accepting && fds[1].revents != 0) AcceptConnections();
    const size_t base = accepting ? 2 : 1;
    for (size_t i = 0; i < polled.size(); ++i) {
      if (fds[base + i].revents == 0) continue;
      if (!ReadSession(polled[i])) {
        MutexLock lock(mu_);
        polled[i]->closing = true;
        if (!polled[i]->busy) CleanupSessionLocked(polled[i]);
      }
    }
  }
}

void Server::AcceptConnections() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient error; poll again.
    }
    SetNonBlocking(fd);
    MutexLock lock(mu_);
    if (stopping_ || sessions_.size() >= options_.max_sessions) {
      metrics_->sessions_refused.fetch_add(1);
      // Best-effort structured refusal so the client sees kUnavailable
      // instead of a bare hangup.
      Frame err = ErrorFrame(
          0, Status::Unavailable(stopping_ ? "server shutting down"
                                           : "server at max sessions"));
      std::string wire;
      EncodeFrame(err, &wire);
      ssize_t ignored = ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
      (void)ignored;
      ::close(fd);
      continue;
    }
    auto s = std::make_shared<Session>();
    s->id = next_session_id_++;
    s->fd = fd;
    sessions_.emplace(s->id, s);
    metrics_->sessions_accepted.fetch_add(1);
    metrics_->sessions_active.fetch_add(1);
  }
}

bool Server::ReadSession(const std::shared_ptr<Session>& s) {
  char chunk[16384];
  for (;;) {
    ssize_t n = ::recv(s->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      s->in_buf.append(chunk, static_cast<size_t>(n));
      for (;;) {
        Frame frame;
        bool complete = false;
        Status st = TryParseFrame(&s->in_buf, &frame, &complete);
        if (!st.ok()) {
          // Bad magic / version / length: the stream is unrecoverable.
          // Answer with a structured error, then drop the session.
          metrics_->protocol_errors.fetch_add(1);
          WriteReply(s, ErrorFrame(s->id, st));
          return false;
        }
        if (!complete) break;
        EnqueueFrame(s, std::move(frame));
      }
      continue;
    }
    if (n == 0) return false;  // EOF (possibly mid-frame); tear down.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void Server::EnqueueFrame(const std::shared_ptr<Session>& s, Frame frame) {
  MutexLock lock(mu_);
  if (s->closing || s->dead) return;
  QueuedRequest req;
  req.frame = std::move(frame);
  if (s->queue.size() >= options_.max_pipeline) {
    // Over the per-session bound: keep the slot so the reply goes out in
    // FIFO order, but never execute it.
    req.rejected = true;
    metrics_->rejected.fetch_add(1);
  }
  s->queue.push_back(std::move(req));
  ++pending_requests_;
  metrics_->pending.store(static_cast<int64_t>(pending_requests_));
  if (!s->busy && !s->parked) {
    s->busy = true;
    std::shared_ptr<Session> sp = s;
    workers_->Submit([this, sp] { ProcessSession(sp); });
  }
}

bool Server::TryAcquireGateLocked(const std::shared_ptr<Session>& s) {
  if (gate_owner_ == s->id) return true;
  if (gate_owner_ != 0) return false;
  gate_owner_ = s->id;
  return true;
}

void Server::ReleaseGateLocked(const std::shared_ptr<Session>& s) {
  if (gate_owner_ != s->id) return;
  gate_owner_ = 0;
  while (!gate_waiters_.empty()) {
    const uint64_t next_id = gate_waiters_.front();
    gate_waiters_.pop_front();
    auto it = sessions_.find(next_id);
    if (it == sessions_.end() || !it->second->parked) continue;
    std::shared_ptr<Session> next = it->second;
    next->parked = false;
    next->busy = true;
    gate_owner_ = next->id;
    workers_->Submit([this, next] { ProcessSession(next); });
    return;
  }
}

void Server::ReleaseGate(const std::shared_ptr<Session>& s) {
  MutexLock lock(mu_);
  ReleaseGateLocked(s);
}

void Server::CleanupSessionLocked(const std::shared_ptr<Session>& s) {
  if (s->dead) return;
  s->closing = true;
  if (gate_owner_ == s->id) {
    if (s->txn_open) {
      // Abort-on-disconnect: the session died mid-transaction; roll the
      // WAL bracket back before the writer gate moves on.
      db_->AbortSessionTransaction();
      s->txn_open = false;
    }
    ReleaseGateLocked(s);
  }
  if (s->parked) {
    s->parked = false;
    for (auto it = gate_waiters_.begin(); it != gate_waiters_.end(); ++it) {
      if (*it == s->id) {
        gate_waiters_.erase(it);
        break;
      }
    }
  }
  pending_requests_ -= s->queue.size();
  metrics_->pending.store(static_cast<int64_t>(pending_requests_));
  s->queue.clear();
  s->dead = true;
  ::shutdown(s->fd, SHUT_RDWR);
  Wake();
}

bool Server::NeedsWriterGate(const Session& s, const Frame& request) const {
  switch (static_cast<Opcode>(request.opcode)) {
    case Opcode::kBegin:
    case Opcode::kReplace:
      return true;
    case Opcode::kExecute: {
      if (request.payload.size() < 4) return false;
      const uint32_t stmt_id = DecodeU32(
          reinterpret_cast<const uint8_t*>(request.payload.data()));
      auto it = s.statements.find(stmt_id);
      return it != s.statements.end() && it->second.is_update;
    }
    default:
      // kCommit/kAbort run on the gate the session already owns (or are
      // errors); reads never need it.
      return false;
  }
}

void Server::ProcessSession(std::shared_ptr<Session> s) {
  for (;;) {
    QueuedRequest req;
    {
      MutexLock lock(mu_);
      if (s->closing) {
        s->busy = false;
        CleanupSessionLocked(s);
        return;
      }
      if (s->queue.empty()) {
        s->busy = false;
        return;
      }
      if (!s->queue.front().rejected &&
          NeedsWriterGate(*s, s->queue.front().frame) &&
          !TryAcquireGateLocked(s)) {
        // Park instead of blocking: the worker goes back to the pool and
        // the gate's release redispatches this session.
        s->parked = true;
        s->busy = false;
        gate_waiters_.push_back(s->id);
        return;
      }
      req = std::move(s->queue.front());
      s->queue.pop_front();
      --pending_requests_;
      metrics_->pending.store(static_cast<int64_t>(pending_requests_));
    }
    if (req.rejected) {
      WriteReply(s, ErrorFrame(s->id, Status::Unavailable(
                                          "session pipeline full; retry")));
      continue;
    }
    const uint64_t start_ns = NowNs();
    const bool keep = HandleRequest(s, req.frame);
    metrics_->request_ns.Observe(NowNs() - start_ns);
    metrics_->requests.fetch_add(1);
    if (!keep) {
      MutexLock lock(mu_);
      s->busy = false;
      CleanupSessionLocked(s);
      return;
    }
  }
}

bool Server::HandleRequest(const std::shared_ptr<Session>& s,
                           Frame& request) {
  Frame reply = Dispatch(s, request);
  const bool wrote = WriteReply(s, reply);
  return wrote && static_cast<Opcode>(request.opcode) != Opcode::kGoodbye;
}

Frame Server::OkFrame(uint64_t session_id, std::string payload) const {
  Frame f;
  f.opcode = static_cast<uint16_t>(Opcode::kOk);
  f.session_id = session_id;
  f.payload = std::move(payload);
  return f;
}

Frame Server::ErrorFrame(uint64_t session_id, const Status& status) const {
  Frame f;
  f.opcode = static_cast<uint16_t>(Opcode::kError);
  f.session_id = session_id;
  EncodeErrorPayload(status, &f.payload);
  return f;
}

bool Server::WriteReply(const std::shared_ptr<Session>& s,
                        const Frame& reply) {
  MutexLock lock(s->write_mu);
  return WriteFrame(s->fd, reply, options_.write_timeout_ms).ok();
}

namespace {

/// Decodes the kExecute payload: u32 stmt id, u16 count, tagged values.
Status DecodeExecute(const std::string& payload, uint32_t* stmt_id,
                     std::vector<Value>* params) {
  ByteReader reader(payload);
  uint16_t count = 0;
  if (!reader.GetU32(stmt_id) || !reader.GetU16(&count)) {
    return Status::Corruption("truncated execute payload");
  }
  params->clear();
  params->reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    Value v;
    FIELDREP_RETURN_IF_ERROR(DecodeTaggedValue(&reader, &v));
    params->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace

Frame Server::Dispatch(const std::shared_ptr<Session>& s,
                       const Frame& request) {
  const Opcode op = static_cast<Opcode>(request.opcode);
  if (request.session_id != 0 && request.session_id != s->id) {
    return ErrorFrame(s->id,
                      Status::InvalidArgument("frame session id mismatch"));
  }
  if (!s->handshaken && op != Opcode::kHandshake) {
    return ErrorFrame(
        s->id, Status::FailedPrecondition("handshake required first"));
  }

  // Error exits from a mutating opcode must give the gate back — but
  // only when it was taken for this request, not when an open
  // transaction owns it.
  auto release_unless_txn = [this, &s] {
    if (!s->txn_open) ReleaseGate(s);
  };

  // Runs `fn` as one atomic, durable unit: inside the session's open
  // transaction if there is one, else wrapped in its own WAL bracket.
  // The writer gate (held on entry) is released *before* the durability
  // wait so concurrent commits batch behind one leader fsync.
  auto run_mutation = [this, &s](const std::function<Status()>& fn) {
    if (s->txn_open) return fn();  // Commit/Abort will release the gate.
    if (db_->wal() == nullptr) {
      Status st = fn();
      ReleaseGate(s);
      return st;
    }
    Status st = db_->BeginSessionTransaction();
    if (!st.ok()) {
      ReleaseGate(s);
      return st;
    }
    st = fn();
    uint64_t commit_lsn = 0;
    if (st.ok()) {
      st = db_->CommitSessionTransaction(&commit_lsn);
    } else {
      db_->AbortSessionTransaction();
    }
    ReleaseGate(s);
    if (st.ok()) st = db_->WaitWalDurable(commit_lsn);
    return st;
  };

  switch (op) {
    case Opcode::kHandshake: {
      s->handshaken = true;
      std::string payload;
      PutU64(&payload, s->id);
      PutU16(&payload, kProtocolVersion);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kPrepareRead: {
      ByteReader reader(request.payload);
      PreparedStatement stmt;
      Status st = DecodeReadStatement(&reader, &stmt.read);
      if (!st.ok()) return ErrorFrame(s->id, st);
      stmt.param_count = stmt.read.ParamCount();
      const uint32_t id = s->next_stmt_id++;
      std::string payload;
      PutU32(&payload, id);
      PutU16(&payload, stmt.param_count);
      s->statements.emplace(id, std::move(stmt));
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kPrepareUpdate: {
      ByteReader reader(request.payload);
      PreparedStatement stmt;
      stmt.is_update = true;
      Status st = DecodeUpdateStatement(&reader, &stmt.update);
      if (!st.ok()) return ErrorFrame(s->id, st);
      stmt.param_count = stmt.update.ParamCount();
      const uint32_t id = s->next_stmt_id++;
      std::string payload;
      PutU32(&payload, id);
      PutU16(&payload, stmt.param_count);
      s->statements.emplace(id, std::move(stmt));
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kCloseStatement: {
      ByteReader reader(request.payload);
      uint32_t stmt_id = 0;
      if (!reader.GetU32(&stmt_id)) {
        return ErrorFrame(s->id,
                          Status::Corruption("truncated close payload"));
      }
      if (s->statements.erase(stmt_id) == 0) {
        return ErrorFrame(s->id, Status::NotFound("no such statement"));
      }
      return OkFrame(s->id, "");
    }
    case Opcode::kExecute: {
      uint32_t stmt_id = 0;
      std::vector<Value> params;
      Status st = DecodeExecute(request.payload, &stmt_id, &params);
      if (!st.ok()) {
        release_unless_txn();  // Gate may have been taken for this frame.
        return ErrorFrame(s->id, st);
      }
      auto it = s->statements.find(stmt_id);
      if (it == s->statements.end()) {
        return ErrorFrame(s->id, Status::NotFound("no such statement"));
      }
      PreparedStatement& stmt = it->second;
      ++stmt.uses;
      if (stmt.is_update) {
        auto bound = stmt.update.Bind(params);
        if (!bound.ok()) {
          release_unless_txn();
          return ErrorFrame(s->id, bound.status());
        }
        UpdateResult result;
        st = run_mutation(
            [this, &bound, &result] { return db_->Replace(*bound, &result); });
        if (!st.ok()) return ErrorFrame(s->id, st);
        std::string payload(1, static_cast<char>(kResultKindUpdate));
        EncodeUpdateResult(result, &payload);
        return OkFrame(s->id, std::move(payload));
      }
      auto bound = stmt.read.Bind(params);
      if (!bound.ok()) return ErrorFrame(s->id, bound.status());
      ReadResult result;
      st = db_->Retrieve(*bound, &result);
      if (!st.ok()) return ErrorFrame(s->id, st);
      std::string payload(1, static_cast<char>(kResultKindRead));
      EncodeReadResult(result, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kRetrieve: {
      ByteReader reader(request.payload);
      ReadStatement stmt;
      Status st = DecodeReadStatement(&reader, &stmt);
      if (!st.ok()) return ErrorFrame(s->id, st);
      auto bound = stmt.Bind({});
      if (!bound.ok()) return ErrorFrame(s->id, bound.status());
      ReadResult result;
      st = db_->Retrieve(*bound, &result);
      if (!st.ok()) return ErrorFrame(s->id, st);
      std::string payload(1, static_cast<char>(kResultKindRead));
      EncodeReadResult(result, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kReplace: {
      ByteReader reader(request.payload);
      UpdateStatement stmt;
      Status st = DecodeUpdateStatement(&reader, &stmt);
      if (!st.ok()) {
        release_unless_txn();
        return ErrorFrame(s->id, st);
      }
      auto bound = stmt.Bind({});
      if (!bound.ok()) {
        release_unless_txn();
        return ErrorFrame(s->id, bound.status());
      }
      UpdateResult result;
      st = run_mutation(
          [this, &bound, &result] { return db_->Replace(*bound, &result); });
      if (!st.ok()) return ErrorFrame(s->id, st);
      std::string payload(1, static_cast<char>(kResultKindUpdate));
      EncodeUpdateResult(result, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kBegin: {
      if (s->txn_open) {
        return ErrorFrame(
            s->id, Status::FailedPrecondition("transaction already open"));
      }
      Status st = db_->BeginSessionTransaction();
      if (!st.ok()) {
        ReleaseGate(s);
        return ErrorFrame(s->id, st);
      }
      s->txn_open = true;  // Gate stays held until Commit/Abort.
      return OkFrame(s->id, "");
    }
    case Opcode::kCommit: {
      if (!s->txn_open) {
        return ErrorFrame(s->id,
                          Status::FailedPrecondition("commit without begin"));
      }
      uint64_t commit_lsn = 0;
      Status st = db_->CommitSessionTransaction(&commit_lsn);
      s->txn_open = false;
      ReleaseGate(s);
      if (st.ok()) st = db_->WaitWalDurable(commit_lsn);
      if (!st.ok()) return ErrorFrame(s->id, st);
      return OkFrame(s->id, "");
    }
    case Opcode::kAbort: {
      if (!s->txn_open) {
        return ErrorFrame(s->id,
                          Status::FailedPrecondition("abort without begin"));
      }
      Status st = db_->AbortSessionTransaction();
      s->txn_open = false;
      ReleaseGate(s);
      if (!st.ok()) return ErrorFrame(s->id, st);
      return OkFrame(s->id, "");
    }
    case Opcode::kMetrics: {
      ByteReader reader(request.payload);
      std::string format;
      if (!reader.GetLengthPrefixed(&format)) format = "prometheus";
      if (db_->metrics() == nullptr) {
        return ErrorFrame(
            s->id, Status::FailedPrecondition("telemetry is disabled"));
      }
      std::string text;
      if (format == "json") {
        text = db_->MetricsJson();
      } else if (format == "prometheus" || format.empty()) {
        text = db_->MetricsPrometheus();
      } else {
        return ErrorFrame(s->id, Status::InvalidArgument(
                                     "unknown metrics format: " + format));
      }
      std::string payload;
      PutLengthPrefixed(&payload, text);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kCatalog: {
      CatalogInfo info;
      const Catalog& catalog = db_->catalog();
      for (const std::string& set_name : catalog.SetNames()) {
        auto set_info = catalog.GetSet(set_name);
        if (!set_info.ok()) continue;
        CatalogInfo::Set set;
        set.name = set_name;
        set.type_name = (*set_info)->type_name;
        auto type = catalog.GetType(set.type_name);
        if (type.ok()) {
          for (const AttributeDescriptor& attr : (*type)->attributes()) {
            CatalogInfo::Attr a;
            a.name = attr.name;
            a.type = attr.type;
            a.char_length = attr.char_length;
            a.ref_type = attr.ref_type;
            set.attributes.push_back(std::move(a));
          }
        }
        info.sets.push_back(std::move(set));
      }
      for (uint16_t path_id : catalog.AllPathIds()) {
        const ReplicationPathInfo* path = catalog.GetPath(path_id);
        if (path != nullptr) info.replicated_paths.push_back(path->spec);
      }
      std::string payload;
      EncodeCatalogInfo(info, &payload);
      return OkFrame(s->id, std::move(payload));
    }
    case Opcode::kGoodbye:
      return OkFrame(s->id, "");
    default:
      return ErrorFrame(
          s->id, Status::InvalidArgument("unknown opcode " +
                                         std::to_string(request.opcode)));
  }
}

}  // namespace fieldrep::net
