#ifndef FIELDREP_CLIENT_CLIENT_H_
#define FIELDREP_CLIENT_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace fieldrep::client {

/// \brief The C++ client library for a fieldrep server (DESIGN.md §12),
/// modeled on the mysql-client shape: a per-connection session, a
/// prepared-statement dictionary with automatic parameter binding and
/// reuse, and asynchronous execution with blocking result retrieval.
///
/// Synchronous calls send one request frame and block for its response.
/// Asynchronous calls (`*Async`) pipeline the request and return a
/// token; `Await*` blocks until that token's response arrives (responses
/// are FIFO on the wire — awaiting out of order buffers the earlier
/// replies). A Client is not thread-safe: use one per thread.
class Client {
 public:
  /// Connects and performs the protocol handshake. Fails with
  /// kUnavailable when the server refuses the session (admission
  /// control).
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& address,
      const std::string& client_name = "fieldrep-client");

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  uint64_t session_id() const { return session_id_; }

  // --- Prepared statements ----------------------------------------------------

  /// Registers a statement template server-side; returns the statement
  /// id for Execute*. Parameter placeholders (net::WireOperand::Param)
  /// are bound per execution.
  Result<uint32_t> PrepareRead(const net::ReadStatement& stmt);
  Result<uint32_t> PrepareUpdate(const net::UpdateStatement& stmt);
  Status CloseStatement(uint32_t stmt_id);
  /// Declared parameter count of a prepared statement.
  Result<uint16_t> StatementParamCount(uint32_t stmt_id) const;

  Status ExecuteRead(uint32_t stmt_id, const std::vector<Value>& params,
                     ReadResult* result);
  Status ExecuteUpdate(uint32_t stmt_id, const std::vector<Value>& params,
                       UpdateResult* result);

  // --- Direct (unprepared) queries --------------------------------------------

  Status Retrieve(const ReadQuery& query, ReadResult* result);
  Status Replace(const UpdateQuery& query, UpdateResult* result);

  // --- Transactions -----------------------------------------------------------

  Status Begin();
  /// Returns once the commit is durable (in group-commit mode the server
  /// batches this session's fsync with concurrent committers).
  Status Commit();
  /// Closes the transaction without logging it: nothing of it survives a
  /// restart (redo-only WAL). Like an embedded mid-operation failure,
  /// already-applied volatile effects may remain visible to later
  /// queries until the server restarts; see DESIGN.md §12.
  Status Abort();

  // --- Introspection ----------------------------------------------------------

  /// Scrapes the server's metrics ("prometheus" or "json").
  Status Metrics(const std::string& format, std::string* out);
  Status GetCatalog(net::CatalogInfo* info);

  // --- Asynchronous execution -------------------------------------------------

  Result<uint64_t> ExecuteReadAsync(uint32_t stmt_id,
                                    const std::vector<Value>& params);
  Result<uint64_t> ExecuteUpdateAsync(uint32_t stmt_id,
                                      const std::vector<Value>& params);
  Result<uint64_t> CommitAsync();
  Status AwaitRead(uint64_t token, ReadResult* result);
  Status AwaitUpdate(uint64_t token, UpdateResult* result);
  /// Awaits a token whose success carries no payload (e.g. CommitAsync).
  Status Await(uint64_t token);

  // --- Lifecycle --------------------------------------------------------------

  /// Severs the connection without the Goodbye handshake — simulates a
  /// client crash (the server must abort any open transaction).
  void Abandon();

 private:
  Client() = default;

  Status SendRequest(net::Opcode op, std::string payload);
  /// Reads one response frame; kError decodes into the returned status.
  Status ReadResponse(std::string* payload);
  /// Synchronous request/response round trip.
  Status Call(net::Opcode op, std::string payload, std::string* response);
  /// Blocks until `token`'s response is available, buffering earlier
  /// FIFO responses.
  Status AwaitToken(uint64_t token, std::string* payload);
  static std::string EncodeExecutePayload(uint32_t stmt_id,
                                          const std::vector<Value>& params);
  static Status DecodeTaggedResult(const std::string& payload,
                                   uint8_t expected_kind, ByteReader* reader);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::string in_buf_;
  /// Outstanding async tokens in send (= response) order.
  std::deque<uint64_t> outstanding_;
  /// Responses read while awaiting a later token. Holds the payload for
  /// OK responses; errors are stored as a (status, payload) pair.
  struct BufferedResponse {
    Status status;
    std::string payload;
  };
  std::map<uint64_t, BufferedResponse> buffered_;
  uint64_t next_token_ = 1;
  std::map<uint32_t, uint16_t> statement_params_;
};

}  // namespace fieldrep::client

#endif  // FIELDREP_CLIENT_CLIENT_H_
