#include "client/client.h"

#include <unistd.h>

#include "common/bytes.h"

namespace fieldrep::client {

using net::Frame;
using net::Opcode;

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& address, const std::string& client_name) {
  std::unique_ptr<Client> client(new Client());
  FIELDREP_ASSIGN_OR_RETURN(client->fd_, net::ConnectTo(address));
  std::string hello;
  PutLengthPrefixed(&hello, client_name);
  std::string response;
  Status send = client->SendRequest(Opcode::kHandshake, std::move(hello));
  // A refused session may close the socket before our Hello lands
  // (EPIPE); its refusal frame is still readable, so a structured
  // server error from the response wins over a transport-level one.
  Status st = client->ReadResponse(&response);
  if (!st.ok()) {
    const bool transport =
        st.IsNotFound() || st.IsIOError() || st.IsCorruption();
    return (transport && !send.ok()) ? send : st;
  }
  if (!send.ok()) return send;
  ByteReader reader(response);
  uint16_t version = 0;
  if (!reader.GetU64(&client->session_id_) || !reader.GetU16(&version)) {
    return Status::Corruption("malformed handshake response");
  }
  if (version != net::kProtocolVersion) {
    return Status::InvalidArgument("server protocol version mismatch");
  }
  return client;
}

Client::~Client() {
  if (fd_ < 0) return;
  // Best-effort Goodbye; the server aborts open transactions on
  // disconnect either way.
  std::string response;
  Call(Opcode::kGoodbye, "", &response);
  ::close(fd_);
}

void Client::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRequest(Opcode op, std::string payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client disconnected");
  Frame frame;
  frame.opcode = static_cast<uint16_t>(op);
  frame.session_id = session_id_;
  frame.payload = std::move(payload);
  return net::WriteFrame(fd_, frame);
}

Status Client::ReadResponse(std::string* payload) {
  Frame frame;
  FIELDREP_RETURN_IF_ERROR(net::ReadFrameBlocking(fd_, &in_buf_, &frame));
  if (frame.opcode == static_cast<uint16_t>(Opcode::kError)) {
    ByteReader reader(frame.payload);
    Status remote;
    FIELDREP_RETURN_IF_ERROR(net::DecodeErrorPayload(&reader, &remote));
    return remote;
  }
  if (frame.opcode != static_cast<uint16_t>(Opcode::kOk)) {
    return Status::Corruption("unexpected response opcode");
  }
  *payload = std::move(frame.payload);
  return Status::OK();
}

Status Client::Call(Opcode op, std::string payload, std::string* response) {
  if (!outstanding_.empty()) {
    // Drain pipelined responses first so FIFO pairing stays intact.
    return Status::FailedPrecondition(
        "async requests outstanding; Await them before synchronous calls");
  }
  FIELDREP_RETURN_IF_ERROR(SendRequest(op, std::move(payload)));
  return ReadResponse(response);
}

Result<uint32_t> Client::PrepareRead(const net::ReadStatement& stmt) {
  std::string payload;
  net::EncodeReadStatement(stmt, &payload);
  std::string response;
  FIELDREP_RETURN_IF_ERROR(
      Call(Opcode::kPrepareRead, std::move(payload), &response));
  ByteReader reader(response);
  uint32_t id = 0;
  uint16_t params = 0;
  if (!reader.GetU32(&id) || !reader.GetU16(&params)) {
    return Status::Corruption("malformed prepare response");
  }
  statement_params_[id] = params;
  return id;
}

Result<uint32_t> Client::PrepareUpdate(const net::UpdateStatement& stmt) {
  std::string payload;
  net::EncodeUpdateStatement(stmt, &payload);
  std::string response;
  FIELDREP_RETURN_IF_ERROR(
      Call(Opcode::kPrepareUpdate, std::move(payload), &response));
  ByteReader reader(response);
  uint32_t id = 0;
  uint16_t params = 0;
  if (!reader.GetU32(&id) || !reader.GetU16(&params)) {
    return Status::Corruption("malformed prepare response");
  }
  statement_params_[id] = params;
  return id;
}

Status Client::CloseStatement(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  std::string response;
  FIELDREP_RETURN_IF_ERROR(
      Call(Opcode::kCloseStatement, std::move(payload), &response));
  statement_params_.erase(stmt_id);
  return Status::OK();
}

Result<uint16_t> Client::StatementParamCount(uint32_t stmt_id) const {
  auto it = statement_params_.find(stmt_id);
  if (it == statement_params_.end()) {
    return Status::NotFound("no such statement");
  }
  return it->second;
}

std::string Client::EncodeExecutePayload(uint32_t stmt_id,
                                         const std::vector<Value>& params) {
  std::string payload;
  PutU32(&payload, stmt_id);
  PutU16(&payload, static_cast<uint16_t>(params.size()));
  for (const Value& v : params) EncodeTaggedValue(v, &payload);
  return payload;
}

Status Client::DecodeTaggedResult(const std::string& payload,
                                  uint8_t expected_kind, ByteReader* reader) {
  (void)payload;  // The reader already wraps it; kept for call-site clarity.
  std::string kind;
  if (!reader->GetRaw(1, &kind)) {
    return Status::Corruption("empty result payload");
  }
  if (static_cast<uint8_t>(kind[0]) != expected_kind) {
    return Status::Corruption("result kind mismatch");
  }
  return Status::OK();
}

Status Client::ExecuteRead(uint32_t stmt_id, const std::vector<Value>& params,
                           ReadResult* result) {
  std::string response;
  FIELDREP_RETURN_IF_ERROR(Call(
      Opcode::kExecute, EncodeExecutePayload(stmt_id, params), &response));
  ByteReader reader(response);
  FIELDREP_RETURN_IF_ERROR(
      DecodeTaggedResult(response, net::kResultKindRead, &reader));
  return net::DecodeReadResult(&reader, result);
}

Status Client::ExecuteUpdate(uint32_t stmt_id,
                             const std::vector<Value>& params,
                             UpdateResult* result) {
  std::string response;
  FIELDREP_RETURN_IF_ERROR(Call(
      Opcode::kExecute, EncodeExecutePayload(stmt_id, params), &response));
  ByteReader reader(response);
  FIELDREP_RETURN_IF_ERROR(
      DecodeTaggedResult(response, net::kResultKindUpdate, &reader));
  return net::DecodeUpdateResult(&reader, result);
}

Status Client::Retrieve(const ReadQuery& query, ReadResult* result) {
  std::string payload;
  net::EncodeReadStatement(net::ReadStatement::From(query), &payload);
  std::string response;
  FIELDREP_RETURN_IF_ERROR(
      Call(Opcode::kRetrieve, std::move(payload), &response));
  ByteReader reader(response);
  FIELDREP_RETURN_IF_ERROR(
      DecodeTaggedResult(response, net::kResultKindRead, &reader));
  return net::DecodeReadResult(&reader, result);
}

Status Client::Replace(const UpdateQuery& query, UpdateResult* result) {
  std::string payload;
  net::EncodeUpdateStatement(net::UpdateStatement::From(query), &payload);
  std::string response;
  FIELDREP_RETURN_IF_ERROR(
      Call(Opcode::kReplace, std::move(payload), &response));
  ByteReader reader(response);
  FIELDREP_RETURN_IF_ERROR(
      DecodeTaggedResult(response, net::kResultKindUpdate, &reader));
  return net::DecodeUpdateResult(&reader, result);
}

Status Client::Begin() {
  std::string response;
  return Call(Opcode::kBegin, "", &response);
}

Status Client::Commit() {
  std::string response;
  return Call(Opcode::kCommit, "", &response);
}

Status Client::Abort() {
  std::string response;
  return Call(Opcode::kAbort, "", &response);
}

Status Client::Metrics(const std::string& format, std::string* out) {
  std::string payload;
  PutLengthPrefixed(&payload, format);
  std::string response;
  FIELDREP_RETURN_IF_ERROR(
      Call(Opcode::kMetrics, std::move(payload), &response));
  ByteReader reader(response);
  if (!reader.GetLengthPrefixed(out)) {
    return Status::Corruption("malformed metrics response");
  }
  return Status::OK();
}

Status Client::GetCatalog(net::CatalogInfo* info) {
  std::string response;
  FIELDREP_RETURN_IF_ERROR(Call(Opcode::kCatalog, "", &response));
  ByteReader reader(response);
  return net::DecodeCatalogInfo(&reader, info);
}

Result<uint64_t> Client::ExecuteReadAsync(uint32_t stmt_id,
                                          const std::vector<Value>& params) {
  FIELDREP_RETURN_IF_ERROR(
      SendRequest(Opcode::kExecute, EncodeExecutePayload(stmt_id, params)));
  const uint64_t token = next_token_++;
  outstanding_.push_back(token);
  return token;
}

Result<uint64_t> Client::ExecuteUpdateAsync(
    uint32_t stmt_id, const std::vector<Value>& params) {
  return ExecuteReadAsync(stmt_id, params);  // Same wire request.
}

Result<uint64_t> Client::CommitAsync() {
  FIELDREP_RETURN_IF_ERROR(SendRequest(Opcode::kCommit, ""));
  const uint64_t token = next_token_++;
  outstanding_.push_back(token);
  return token;
}

Status Client::AwaitToken(uint64_t token, std::string* payload) {
  for (;;) {
    auto it = buffered_.find(token);
    if (it != buffered_.end()) {
      Status st = it->second.status;
      *payload = std::move(it->second.payload);
      buffered_.erase(it);
      return st;
    }
    if (outstanding_.empty()) {
      return Status::NotFound("unknown async token");
    }
    // Responses arrive in request order: attribute the next response to
    // the oldest outstanding token.
    const uint64_t oldest = outstanding_.front();
    outstanding_.pop_front();
    BufferedResponse response;
    response.status = ReadResponse(&response.payload);
    buffered_.emplace(oldest, std::move(response));
  }
}

Status Client::AwaitRead(uint64_t token, ReadResult* result) {
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(AwaitToken(token, &payload));
  ByteReader reader(payload);
  FIELDREP_RETURN_IF_ERROR(
      DecodeTaggedResult(payload, net::kResultKindRead, &reader));
  return net::DecodeReadResult(&reader, result);
}

Status Client::AwaitUpdate(uint64_t token, UpdateResult* result) {
  std::string payload;
  FIELDREP_RETURN_IF_ERROR(AwaitToken(token, &payload));
  ByteReader reader(payload);
  FIELDREP_RETURN_IF_ERROR(
      DecodeTaggedResult(payload, net::kResultKindUpdate, &reader));
  return net::DecodeUpdateResult(&reader, result);
}

Status Client::Await(uint64_t token) {
  std::string payload;
  return AwaitToken(token, &payload);
}

}  // namespace fieldrep::client
