# Empty compiler generated dependencies file for extra_repl.
# This may be replaced when dependencies are built.
