file(REMOVE_RECURSE
  "CMakeFiles/extra_repl.dir/extra_repl.cpp.o"
  "CMakeFiles/extra_repl.dir/extra_repl.cpp.o.d"
  "extra_repl"
  "extra_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
