# Empty compiler generated dependencies file for company_reporting.
# This may be replaced when dependencies are built.
