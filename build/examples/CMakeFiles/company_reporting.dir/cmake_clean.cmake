file(REMOVE_RECURSE
  "CMakeFiles/company_reporting.dir/company_reporting.cpp.o"
  "CMakeFiles/company_reporting.dir/company_reporting.cpp.o.d"
  "company_reporting"
  "company_reporting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_reporting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
