file(REMOVE_RECURSE
  "CMakeFiles/replication_advisor.dir/replication_advisor.cpp.o"
  "CMakeFiles/replication_advisor.dir/replication_advisor.cpp.o.d"
  "replication_advisor"
  "replication_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
