# Empty compiler generated dependencies file for replication_advisor.
# This may be replaced when dependencies are built.
