# Empty dependencies file for fieldrep_tests.
# This may be replaced when dependencies are built.
