
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/costmodel_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/costmodel_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/costmodel_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/extra_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/extra_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/extra_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/link_set_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/link_set_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/link_set_test.cc.o.d"
  "/root/repo/tests/object_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/object_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/object_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/replication_property_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/replication_property_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/replication_property_test.cc.o.d"
  "/root/repo/tests/replication_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/replication_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/replication_test.cc.o.d"
  "/root/repo/tests/scenario_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/scenario_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/scenario_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/fieldrep_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/fieldrep_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/fieldrep_tests.dir/test_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fieldrep.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
