
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/fieldrep.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/link_registry.cc" "src/CMakeFiles/fieldrep.dir/catalog/link_registry.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/catalog/link_registry.cc.o.d"
  "/root/repo/src/catalog/path.cc" "src/CMakeFiles/fieldrep.dir/catalog/path.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/catalog/path.cc.o.d"
  "/root/repo/src/catalog/type.cc" "src/CMakeFiles/fieldrep.dir/catalog/type.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/catalog/type.cc.o.d"
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/fieldrep.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/fieldrep.dir/common/random.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/fieldrep.dir/common/status.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/fieldrep.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/common/strings.cc.o.d"
  "/root/repo/src/costmodel/cost_model.cc" "src/CMakeFiles/fieldrep.dir/costmodel/cost_model.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/costmodel/cost_model.cc.o.d"
  "/root/repo/src/costmodel/params.cc" "src/CMakeFiles/fieldrep.dir/costmodel/params.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/costmodel/params.cc.o.d"
  "/root/repo/src/costmodel/series.cc" "src/CMakeFiles/fieldrep.dir/costmodel/series.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/costmodel/series.cc.o.d"
  "/root/repo/src/costmodel/yao.cc" "src/CMakeFiles/fieldrep.dir/costmodel/yao.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/costmodel/yao.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/fieldrep.dir/db/database.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/db/database.cc.o.d"
  "/root/repo/src/extra/ast.cc" "src/CMakeFiles/fieldrep.dir/extra/ast.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/extra/ast.cc.o.d"
  "/root/repo/src/extra/interpreter.cc" "src/CMakeFiles/fieldrep.dir/extra/interpreter.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/extra/interpreter.cc.o.d"
  "/root/repo/src/extra/lexer.cc" "src/CMakeFiles/fieldrep.dir/extra/lexer.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/extra/lexer.cc.o.d"
  "/root/repo/src/extra/parser.cc" "src/CMakeFiles/fieldrep.dir/extra/parser.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/extra/parser.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/fieldrep.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/index/btree.cc.o.d"
  "/root/repo/src/index/index_manager.cc" "src/CMakeFiles/fieldrep.dir/index/index_manager.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/index/index_manager.cc.o.d"
  "/root/repo/src/objects/object.cc" "src/CMakeFiles/fieldrep.dir/objects/object.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/objects/object.cc.o.d"
  "/root/repo/src/objects/object_set.cc" "src/CMakeFiles/fieldrep.dir/objects/object_set.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/objects/object_set.cc.o.d"
  "/root/repo/src/objects/value.cc" "src/CMakeFiles/fieldrep.dir/objects/value.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/objects/value.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/fieldrep.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/query/executor.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/fieldrep.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/read_query.cc" "src/CMakeFiles/fieldrep.dir/query/read_query.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/query/read_query.cc.o.d"
  "/root/repo/src/query/update_query.cc" "src/CMakeFiles/fieldrep.dir/query/update_query.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/query/update_query.cc.o.d"
  "/root/repo/src/replication/inverted_path.cc" "src/CMakeFiles/fieldrep.dir/replication/inverted_path.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/replication/inverted_path.cc.o.d"
  "/root/repo/src/replication/link_object.cc" "src/CMakeFiles/fieldrep.dir/replication/link_object.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/replication/link_object.cc.o.d"
  "/root/repo/src/replication/link_set.cc" "src/CMakeFiles/fieldrep.dir/replication/link_set.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/replication/link_set.cc.o.d"
  "/root/repo/src/replication/propagation.cc" "src/CMakeFiles/fieldrep.dir/replication/propagation.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/replication/propagation.cc.o.d"
  "/root/repo/src/replication/replication_manager.cc" "src/CMakeFiles/fieldrep.dir/replication/replication_manager.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/replication/replication_manager.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/fieldrep.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/file_device.cc" "src/CMakeFiles/fieldrep.dir/storage/file_device.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/storage/file_device.cc.o.d"
  "/root/repo/src/storage/io_stats.cc" "src/CMakeFiles/fieldrep.dir/storage/io_stats.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/storage/io_stats.cc.o.d"
  "/root/repo/src/storage/memory_device.cc" "src/CMakeFiles/fieldrep.dir/storage/memory_device.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/storage/memory_device.cc.o.d"
  "/root/repo/src/storage/record_file.cc" "src/CMakeFiles/fieldrep.dir/storage/record_file.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/storage/record_file.cc.o.d"
  "/root/repo/src/storage/slotted_page.cc" "src/CMakeFiles/fieldrep.dir/storage/slotted_page.cc.o" "gcc" "src/CMakeFiles/fieldrep.dir/storage/slotted_page.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
