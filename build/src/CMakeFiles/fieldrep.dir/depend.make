# Empty dependencies file for fieldrep.
# This may be replaced when dependencies are built.
