file(REMOVE_RECURSE
  "libfieldrep.a"
)
