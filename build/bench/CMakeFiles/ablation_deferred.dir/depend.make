# Empty dependencies file for ablation_deferred.
# This may be replaced when dependencies are built.
