file(REMOVE_RECURSE
  "CMakeFiles/ablation_deferred.dir/ablation_deferred.cc.o"
  "CMakeFiles/ablation_deferred.dir/ablation_deferred.cc.o.d"
  "ablation_deferred"
  "ablation_deferred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deferred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
