# Empty dependencies file for fig12_selected_costs.
# This may be replaced when dependencies are built.
