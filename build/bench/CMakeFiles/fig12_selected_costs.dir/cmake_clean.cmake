file(REMOVE_RECURSE
  "CMakeFiles/fig12_selected_costs.dir/fig12_selected_costs.cc.o"
  "CMakeFiles/fig12_selected_costs.dir/fig12_selected_costs.cc.o.d"
  "fig12_selected_costs"
  "fig12_selected_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_selected_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
