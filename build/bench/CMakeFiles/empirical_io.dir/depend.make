# Empty dependencies file for empirical_io.
# This may be replaced when dependencies are built.
