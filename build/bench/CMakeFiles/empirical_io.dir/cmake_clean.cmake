file(REMOVE_RECURSE
  "CMakeFiles/empirical_io.dir/empirical_io.cc.o"
  "CMakeFiles/empirical_io.dir/empirical_io.cc.o.d"
  "empirical_io"
  "empirical_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empirical_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
