file(REMOVE_RECURSE
  "CMakeFiles/fig11_unclustered_model.dir/fig11_unclustered_model.cc.o"
  "CMakeFiles/fig11_unclustered_model.dir/fig11_unclustered_model.cc.o.d"
  "fig11_unclustered_model"
  "fig11_unclustered_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_unclustered_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
