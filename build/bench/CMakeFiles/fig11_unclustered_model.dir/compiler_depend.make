# Empty compiler generated dependencies file for fig11_unclustered_model.
# This may be replaced when dependencies are built.
