# Empty dependencies file for fig13_clustered_model.
# This may be replaced when dependencies are built.
