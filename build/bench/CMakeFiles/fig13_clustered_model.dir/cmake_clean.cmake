file(REMOVE_RECURSE
  "CMakeFiles/fig13_clustered_model.dir/fig13_clustered_model.cc.o"
  "CMakeFiles/fig13_clustered_model.dir/fig13_clustered_model.cc.o.d"
  "fig13_clustered_model"
  "fig13_clustered_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_clustered_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
