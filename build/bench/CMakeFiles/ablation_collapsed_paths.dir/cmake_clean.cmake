file(REMOVE_RECURSE
  "CMakeFiles/ablation_collapsed_paths.dir/ablation_collapsed_paths.cc.o"
  "CMakeFiles/ablation_collapsed_paths.dir/ablation_collapsed_paths.cc.o.d"
  "ablation_collapsed_paths"
  "ablation_collapsed_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collapsed_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
