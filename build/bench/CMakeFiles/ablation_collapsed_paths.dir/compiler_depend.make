# Empty compiler generated dependencies file for ablation_collapsed_paths.
# This may be replaced when dependencies are built.
