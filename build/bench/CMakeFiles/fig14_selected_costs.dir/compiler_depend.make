# Empty compiler generated dependencies file for fig14_selected_costs.
# This may be replaced when dependencies are built.
