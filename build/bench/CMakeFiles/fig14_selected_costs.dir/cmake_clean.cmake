file(REMOVE_RECURSE
  "CMakeFiles/fig14_selected_costs.dir/fig14_selected_costs.cc.o"
  "CMakeFiles/fig14_selected_costs.dir/fig14_selected_costs.cc.o.d"
  "fig14_selected_costs"
  "fig14_selected_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_selected_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
