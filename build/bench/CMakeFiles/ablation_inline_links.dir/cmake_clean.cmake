file(REMOVE_RECURSE
  "CMakeFiles/ablation_inline_links.dir/ablation_inline_links.cc.o"
  "CMakeFiles/ablation_inline_links.dir/ablation_inline_links.cc.o.d"
  "ablation_inline_links"
  "ablation_inline_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inline_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
