#!/usr/bin/env bash
# End-to-end client/server smoke: starts fieldrep_server on a unix
# socket, drives it with fieldrep_client (catalog + generic round trip),
# scrapes live metrics with fieldrep_stats --connect, and verifies a
# clean SIGTERM shutdown. Intended for CI (including sanitizer builds)
# and local sanity checks.
#
# Usage: scripts/net_smoke.sh [build-dir] [database-file]
#
#   build-dir      CMake build tree (default: build)
#   database-file  database to serve; created via examples/persistent_store
#                  when missing (default: a fresh temp file)
set -euo pipefail

BUILD_DIR="${1:-build}"
DB_FILE="${2:-}"

SERVER="$BUILD_DIR/tools/fieldrep_server"
CLIENT="$BUILD_DIR/tools/fieldrep_client"
STATS="$BUILD_DIR/tools/fieldrep_stats"
for bin in "$SERVER" "$CLIENT" "$STATS"; do
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d /tmp/fieldrep_net_smoke.XXXXXX)"
SERVER_PID=""
cleanup() {
  if [[ -n "$SERVER_PID" ]] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -KILL "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK_DIR"
}
trap cleanup EXIT

if [[ -z "$DB_FILE" ]]; then
  DB_FILE="$WORK_DIR/smoke.db"
  if [[ -x "$BUILD_DIR/examples/persistent_store" ]]; then
    "$BUILD_DIR/examples/persistent_store" "$DB_FILE" > /dev/null
  fi
fi

SOCKET="$WORK_DIR/server.sock"
"$SERVER" --listen "unix:$SOCKET" --max-sessions 8 "$DB_FILE" \
  > "$WORK_DIR/server.log" 2>&1 &
SERVER_PID=$!

# Wait for the listening line (sanitizer builds start slowly).
for _ in $(seq 1 100); do
  grep -q "^listening on " "$WORK_DIR/server.log" 2>/dev/null && break
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "error: server exited during startup" >&2
    cat "$WORK_DIR/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
grep -q "^listening on " "$WORK_DIR/server.log" || {
  echo "error: server never started listening" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
}

echo "== catalog =="
"$CLIENT" --connect "unix:$SOCKET" --catalog

echo "== smoke round trip =="
"$CLIENT" --connect "unix:$SOCKET" --smoke

echo "== live metrics scrape (prometheus) =="
"$STATS" --connect "unix:$SOCKET" --format=prometheus > "$WORK_DIR/metrics.prom"
head -n 6 "$WORK_DIR/metrics.prom"
grep -q "^# TYPE fieldrep_net_requests_total counter" "$WORK_DIR/metrics.prom"
# Lock-table metrics (DESIGN.md §14) must flow through every format.
grep -q "^# TYPE fieldrep_lock_acquisitions_total counter" "$WORK_DIR/metrics.prom"
grep -q "^# TYPE fieldrep_lock_conflicts_total counter" "$WORK_DIR/metrics.prom"
grep -q "^fieldrep_lock_held " "$WORK_DIR/metrics.prom"

echo "== live metrics scrape (text) =="
"$STATS" --connect "unix:$SOCKET" > "$WORK_DIR/metrics.txt"
grep -q "fieldrep_lock_wait_ns_total" "$WORK_DIR/metrics.txt"

echo "== live metrics scrape (json) =="
"$STATS" --connect "unix:$SOCKET" --format=json > "$WORK_DIR/metrics.json"
python3 - "$WORK_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["version"] == 1, doc.get("version")
names = {m["name"] for m in doc["metrics"]}
for required in (
    "fieldrep_pool_fetches_total",
    "fieldrep_net_sessions_total",
    "fieldrep_net_requests_total",
    "fieldrep_net_parks_total",
    "fieldrep_net_txn_aborts_total",
    "fieldrep_wal_group_batches_total",
    "fieldrep_lock_acquisitions_total",
    "fieldrep_lock_conflicts_total",
    "fieldrep_lock_aborts_total",
    "fieldrep_lock_wait_ns_total",
    "fieldrep_lock_held",
    "fieldrep_lock_waiters",
):
    assert required in names, f"missing {required}: {sorted(names)}"
print(f"ok: {len(doc['metrics'])} metrics over the wire")
EOF

echo "== clean shutdown =="
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
SERVER_PID=""
if [[ "$EXIT_CODE" -ne 0 ]]; then
  echo "error: server exited $EXIT_CODE on SIGTERM" >&2
  cat "$WORK_DIR/server.log" >&2
  exit 1
fi
if [[ -e "$SOCKET" ]]; then
  echo "error: socket not unlinked on shutdown" >&2
  exit 1
fi

echo "net smoke ok"
