#!/usr/bin/env bash
# Runs the benchmark suite and collects machine-readable results.
#
# Usage: scripts/run_benches.sh [--device=file|uring|uring-direct] \
#                                [build-dir] [out-dir]
#
#   --device   storage device forwarded to every raw-I/O bench
#              (empirical_io, scale_io); default file
#   build-dir  CMake build tree containing bench/ binaries (default: build)
#   out-dir    where BENCH_*.json files are collected (default: bench-results)
#
# Benchmarks that support --json write BENCH_<name>.json; the remaining
# table-only benches have their stdout captured as <name>.txt.
set -euo pipefail

DEVICE="file"
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --device=*) DEVICE="${arg#--device=}" ;;
    *) ARGS+=("$arg") ;;
  esac
done
set -- "${ARGS[@]+"${ARGS[@]}"}"

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [[ ! -d "$BUILD_DIR/bench" ]]; then
  echo "error: $BUILD_DIR/bench not found — build the project first" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
cd "$OUT_DIR"
OUT_ABS="$PWD"
cd - > /dev/null

run() {
  local name="$1"
  shift
  local bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $name (not built)"
    return
  fi
  echo "== $name $* =="
  "$bin" "$@" | tee "$OUT_ABS/$name.txt"
}

# Like run, but captures stdout under a distinct label so one binary can
# contribute several workloads without clobbering its own .txt.
run_as() {
  local label="$1"
  local name="$2"
  shift 2
  local bin="$BUILD_DIR/bench/$name"
  if [[ ! -x "$bin" ]]; then
    echo "skipping $name (not built)"
    return
  fi
  echo "== $label: $name $* =="
  "$bin" "$@" | tee "$OUT_ABS/$label.txt"
}

# JSON-capable benches: results land in $OUT_DIR/BENCH_<name>.json.
# --threads records the worker count in the JSON metadata (concurrent_read
# additionally sweeps its built-in 1/2/4/8 ladder).
run empirical_io --json="$OUT_ABS/BENCH_empirical_io.json" \
  --device="$DEVICE" 500 2
run scale_io --json="$OUT_ABS/BENCH_scale_io.json" --preset=ci \
  --device="$DEVICE"
run micro_ops --json="$OUT_ABS/BENCH_micro_ops.json" --threads=4
run concurrent_read --json="$OUT_ABS/BENCH_concurrent_read.json" --threads=4
run net_throughput --json="$OUT_ABS/BENCH_net_throughput.json" --max-clients 64

# Multi-writer concurrency benches (DESIGN.md §14): disjoint-set writers
# must show zero lock conflicts (net_throughput exits nonzero otherwise);
# the mixed mode measures reader throughput alongside concurrent updates
# of the replicated field.
run_as net_multiwriter net_throughput \
  --json="$OUT_ABS/BENCH_net_multiwriter.json" --sets=4
run_as concurrent_mixed concurrent_read \
  --json="$OUT_ABS/BENCH_concurrent_mixed.json" --mixed=2

# Table-only benches (stdout captured).
run fig11_unclustered_model
run fig13_clustered_model
run fig12_selected_costs
run fig14_selected_costs
run ablation_inline_links
run ablation_collapsed_paths
run ablation_deferred
run wal_overhead

echo
echo "results collected in $OUT_DIR/"
ls -l "$OUT_ABS"
