#!/usr/bin/env python3
"""Compares a fresh scale_io JSON against the committed seed.

Usage: scripts/check_scale_io.py NEW_JSON [SEED_JSON]

The *logical* I/O counters (fetches / hits / disk_reads / disk_writes per
phase) are deterministic for a given preset + seed + window and identical
across storage devices (file vs uring vs uring-direct) — the buffer pool's
charge-on-first-fetch rule guarantees it. Wall-clock metrics vary run to
run and are not compared. Exit code 1 on any mismatch.
"""

import json
import sys

LOGICAL_SUFFIXES = ("fetches", "hits", "disk_reads", "disk_writes", ".ops")
SHAPE_KEYS = ("s_count", "f", "objects", "data_pages", "pool_frames",
              "window", "zipf_theta")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    assert doc["bench"] == "scale_io", f"{path}: not a scale_io result"
    return doc["metrics"]


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    new = load(sys.argv[1])
    seed = load(sys.argv[2] if len(sys.argv) > 2 else "BENCH_scale_io.json")

    checked = 0
    failures = []
    for key in seed:
        logical = key in SHAPE_KEYS or any(
            key.endswith(s) for s in LOGICAL_SUFFIXES)
        if not logical:
            continue
        checked += 1
        if key not in new:
            failures.append(f"missing key {key}")
        elif new[key] != seed[key]:
            failures.append(f"{key}: seed={seed[key]} new={new[key]}")
    for line in failures:
        print(f"MISMATCH {line}")
    if not failures:
        print(f"ok: {checked} logical counters match the committed seed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
