#!/usr/bin/env bash
# Annotation-coverage lint: every lock in the engine must be one of the
# annotated wrappers from src/common/annotated_mutex.h (which carry the
# clang thread-safety capability annotations and the runtime lock rank).
# A raw standard primitive anywhere else dodges both checkers, so CI
# fails on sight of one.
set -euo pipefail
cd "$(dirname "$0")/.."

pattern='std::(mutex|shared_mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|shared_lock|scoped_lock)\b'
allowed='src/common/annotated_mutex.h'

matches=$(grep -rEn "$pattern" src --include='*.h' --include='*.cc' \
  | grep -v "^${allowed}:" || true)

if [ -n "$matches" ]; then
  echo "error: raw standard mutex primitives outside ${allowed}:" >&2
  echo "$matches" >&2
  echo >&2
  echo "Use the annotated vocabulary instead (DESIGN.md #13):" >&2
  echo "  Mutex / SharedMutex / RecursiveMutex  with a LockRank and a name" >&2
  echo "  MutexLock / ReaderMutexLock / WriterMutexLock / UniqueMutexLock" >&2
  echo "  CondVar (condition_variable_any over the annotated locks)" >&2
  exit 1
fi
echo "ok: no raw mutex primitives outside ${allowed}"
