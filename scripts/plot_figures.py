#!/usr/bin/env python3
"""Plots Figures 11 and 13 from the benches' CSV output.

Usage:
    build/bench/fig11_unclustered_model --csv > /tmp/fig11.csv
    build/bench/fig13_clustered_model  --csv > /tmp/fig13.csv
    python3 scripts/plot_figures.py /tmp/fig11.csv fig11.png
    python3 scripts/plot_figures.py /tmp/fig13.csv fig13.png

Each CSV contains four `# f=<n>` blocks (one per panel); the plot mirrors
the paper's 2x2 layout with the percentage difference in C_total on the
y-axis (clamped at +50% like the paper's graphs).
"""
import sys

import matplotlib
matplotlib.use("Agg")
import matplotlib.pyplot as plt


def read_blocks(path):
    blocks = []
    with open(path) as f:
        block = None
        for line in f:
            line = line.strip()
            if line.startswith("# f="):
                block = {"f": float(line[4:]), "header": None, "rows": []}
                blocks.append(block)
            elif not line:
                continue
            elif block is not None and block["header"] is None:
                block["header"] = line.split(",")
            elif block is not None:
                block["rows"].append([float(x) for x in line.split(",")])
    return blocks


def main():
    if len(sys.argv) != 3:
        print(__doc__)
        return 1
    blocks = read_blocks(sys.argv[1])
    fig, axes = plt.subplots(2, 2, figsize=(11, 9), sharex=True)
    for ax, block in zip(axes.flat, blocks):
        xs = [row[0] for row in block["rows"]]
        for col, name in enumerate(block["header"][1:], start=1):
            ys = [min(row[col], 50.0) for row in block["rows"]]
            style = "-" if name.startswith("inplace") else "--"
            ax.plot(xs, ys, style, label=name)
        ax.axhline(0, color="black", linewidth=0.6)
        ax.set_title(f"f = {block['f']:.0f}, |R| = {block['f'] * 10000:.0f}")
        ax.set_xlabel("Update Probability")
        ax.set_ylabel("% difference in C_total")
        ax.set_ylim(-100, 50)
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(sys.argv[2], dpi=130)
    print(f"wrote {sys.argv[2]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
