// Replication advisor: uses the Section 6 analytical cost model the way the
// paper intends a DBA to — given a workload description (sharing level,
// selectivities, update probability, index clustering), it prices the three
// strategies, reports the crossover points, and recommends one.
//
// Build & run:  ./build/examples/replication_advisor [f] [p_update] [fr]
//   e.g.        ./build/examples/replication_advisor 20 0.05 0.002

#include <cstdio>
#include <cstdlib>

#include "costmodel/series.h"

using namespace fieldrep;

namespace {

const char* Pick(const CostModel& model, IndexSetting setting,
                 double p_update) {
  double best = model.TotalCost(ModelStrategy::kNoReplication, setting,
                                p_update);
  ModelStrategy winner = ModelStrategy::kNoReplication;
  for (ModelStrategy strategy :
       {ModelStrategy::kInPlace, ModelStrategy::kSeparate}) {
    double cost = model.TotalCost(strategy, setting, p_update);
    if (cost < best) {
      best = cost;
      winner = strategy;
    }
  }
  return ModelStrategyName(winner);
}

}  // namespace

int main(int argc, char** argv) {
  CostModelParams params;  // the paper's Figure 10 defaults
  params.f = argc > 1 ? std::atof(argv[1]) : 20;
  double p_update = argc > 2 ? std::atof(argv[2]) : 0.05;
  params.fr = argc > 3 ? std::atof(argv[3]) : 0.002;
  CostModel model(params);

  std::printf("workload: %s, P_update = %.3f\n\n",
              params.ToString().c_str(), p_update);

  for (IndexSetting setting :
       {IndexSetting::kUnclustered, IndexSetting::kClustered}) {
    std::printf("--- %s clause indexes ---\n", IndexSettingName(setting));
    std::printf("  %-24s %10s %10s %12s %10s\n", "strategy", "C_read",
                "C_update", "C_total", "vs none");
    for (ModelStrategy strategy :
         {ModelStrategy::kNoReplication, ModelStrategy::kInPlace,
          ModelStrategy::kSeparate}) {
      std::printf("  %-24s %10.0f %10.0f %12.1f %+9.1f%%\n",
                  ModelStrategyName(strategy),
                  model.ReadCost(strategy, setting),
                  model.UpdateCost(strategy, setting),
                  model.TotalCost(strategy, setting, p_update),
                  model.PercentDifference(strategy, setting, p_update));
    }
    double inplace_vs_sep = CrossoverUpdateProbability(
        model, ModelStrategy::kInPlace, ModelStrategy::kSeparate, setting);
    double inplace_vs_none = CrossoverUpdateProbability(
        model, ModelStrategy::kInPlace, ModelStrategy::kNoReplication,
        setting);
    double sep_vs_none = CrossoverUpdateProbability(
        model, ModelStrategy::kSeparate, ModelStrategy::kNoReplication,
        setting);
    auto show = [](double x) {
      static char buf[2][16];
      static int which = 0;
      which ^= 1;
      if (x < 0) {
        std::snprintf(buf[which], sizeof(buf[which]), "never");
      } else {
        std::snprintf(buf[which], sizeof(buf[which]), "%.3f", x);
      }
      return buf[which];
    };
    std::printf("  crossovers: in-place/separate at P_update = %s, "
                "in-place/none at %s, separate/none at %s\n",
                show(inplace_vs_sep), show(inplace_vs_none),
                show(sep_vs_none));
    std::printf("  recommendation at P_update = %.3f: %s\n\n", p_update,
                Pick(model, setting, p_update));
  }

  std::printf(
      "rules of thumb from the paper (Section 6.8): prefer in-place when "
      "updates are rare\n(P_update < ~0.15) or sharing is low (f = 1); "
      "prefer separate when sharing and update\nrates are both high; "
      "skip replication when the path is updated more than read.\n");
  return 0;
}
