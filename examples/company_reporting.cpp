// Company reporting: a whole session in the EXTRA-flavoured statement
// language — multi-level replication paths (Section 3.3.2), collapsing a
// path with a replicated ref attribute (Section 3.3.3), and an index on a
// replicated n-level path supporting associative lookup (Section 3.3.4).
//
// Build & run:  ./build/examples/company_reporting

#include <cstdio>
#include <cstdlib>

#include "extra/interpreter.h"

using namespace fieldrep;

namespace {
void Run(extra::Interpreter* interpreter, const std::string& script) {
  auto out = interpreter->Execute(script);
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\nscript: %s\n",
                 out.status().ToString().c_str(), script.c_str());
    std::exit(1);
  }
  std::printf("%s", out->c_str());
}
}  // namespace

int main() {
  auto db_or = Database::Open({});
  if (!db_or.ok()) {
    std::fprintf(stderr, "%s\n", db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  extra::Interpreter interpreter(db.get());

  std::printf(">>> schema (the paper's Figure 1)\n");
  Run(&interpreter,
      "define type ORG  ( name: char[20], budget: int );"
      "define type DEPT ( name: char[20], budget: int, org: ref ORG );"
      "define type EMP  ( name: char[20], age: int, salary: int, "
      "                   dept: ref DEPT );"
      "create Org: {own ref ORG};"
      "create Dept: {own ref DEPT};"
      "create Emp1: {own ref EMP};"
      "create Emp2: {own ref EMP};");

  std::printf("\n>>> data\n");
  Run(&interpreter,
      "insert Org (name = \"acme\", budget = 500) as $acme;"
      "insert Org (name = \"globex\", budget = 900) as $globex;"
      "insert Dept (name = \"toys\",  budget = 10, org = $acme)   as $toys;"
      "insert Dept (name = \"shoes\", budget = 20, org = $acme)   as $shoes;"
      "insert Dept (name = \"lasers\", budget = 80, org = $globex) as "
      "$lasers;"
      "insert Emp1 (name = \"fred\", age = 40, salary = 120000, dept = "
      "$toys);"
      "insert Emp1 (name = \"sue\",  age = 35, salary = 150000, dept = "
      "$shoes);"
      "insert Emp1 (name = \"ann\",  age = 28, salary = 90000,  dept = "
      "$lasers);"
      "insert Emp1 (name = \"bob\",  age = 51, salary = 101000, dept = "
      "$lasers);"
      "insert Emp2 (name = \"zoe\",  age = 30, salary = 70000,  dept = "
      "$toys);");

  std::printf("\n>>> 2-level replication (Section 3.3.2) + full object "
              "replication (Section 3.3.1)\n");
  Run(&interpreter,
      "replicate Emp1.dept.org.name;"
      "replicate Emp1.dept.all;"
      "show catalog;");

  std::printf("\n>>> an index on a replicated 2-level path "
              "(Section 3.3.4)\n");
  Run(&interpreter, "build btree emp_by_org on Emp1.dept.org.name;");

  std::printf("\n>>> associative lookup: employees of organization "
              "\"globex\" (one index probe, no joins)\n");
  Run(&interpreter,
      "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name, "
      "Emp1.dept.org.name) where Emp1.dept.org.name = \"globex\"");

  std::printf("\n>>> update an organization's name: the inverted path "
              "propagates it to every replica and the path index follows\n");
  Run(&interpreter,
      "replace Org (name = \"initech\") where name = \"globex\";"
      "verify Emp1.dept.org.name;"
      "retrieve (Emp1.name, Emp1.dept.org.name) "
      "where Emp1.dept.org.name = \"initech\"");

  std::printf("\n>>> retarget a department to another organization "
              "(the Section 4.1.2 ripple)\n");
  Run(&interpreter,
      "replace Dept (org = $acme) where name = \"lasers\";"
      "verify Emp1.dept.org.name;"
      "retrieve (Emp1.name, Emp1.dept.org.name) where Emp1.salary > "
      "100000");

  std::printf("\n>>> separate replication for the update-heavy Emp2 set "
              "(Section 5)\n");
  Run(&interpreter,
      "replicate Emp2.dept.name using separate;"
      "replace Dept (name = \"fun\") where name = \"toys\";"
      "verify Emp2.dept.name;"
      "retrieve (Emp2.name, Emp2.dept.name)");

  std::printf("\n>>> deferred propagation (Section 8 future work): updates "
              "queue until the next read needs them\n");
  Run(&interpreter, "replicate Emp1.dept.budget deferred;");
  Run(&interpreter,
      "replace Dept (budget = 11) where name = \"fun\";"
      "replace Dept (budget = 12) where name = \"fun\";"
      "replace Dept (budget = 13) where name = \"fun\";");
  std::printf("pending propagations queued: %zu (three updates, one hot "
              "department)\n",
              db->replication().pending_propagation_count());
  Run(&interpreter,
      "retrieve (Emp1.name, Emp1.dept.budget) where Emp1.salary > 140000");
  std::printf("pending propagations after the read: %zu (flushed on "
              "demand)\n",
              db->replication().pending_propagation_count());

  std::printf("\n>>> inverse functions (Section 8 future work): who "
              "references the lasers department?\n");
  auto lasers = interpreter.GetVariable("lasers");
  if (lasers.ok()) {
    std::vector<Oid> referencers;
    bool via_link = false;
    Status s = db->replication().FindReferencers("Emp1", "dept", *lasers,
                                                 &referencers, &via_link);
    if (s.ok()) {
      std::printf("%zu Emp1 objects reference $lasers, answered via %s\n",
                  referencers.size(),
                  via_link ? "the inverted path's link object (no scan)"
                           : "a set scan");
    }
  }
  return 0;
}
