// Persistent store: a file-backed database across two sessions. Session 1
// builds the employee database, replicates a path, builds an index, and
// checkpoints; session 2 reopens the same file and picks up exactly where
// session 1 left off — replicas, links, and indexes intact.
//
// Build & run:  ./build/examples/persistent_store [path]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "extra/interpreter.h"

using namespace fieldrep;

namespace {
void Run(extra::Interpreter* interpreter, const std::string& script) {
  auto out = interpreter->Execute(script);
  if (!out.ok()) {
    std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("%s", out->c_str());
}

std::unique_ptr<Database> OpenAt(const std::string& path) {
  Database::Options options;
  options.file_path = path;
  auto db = Database::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}
}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "/tmp/fieldrep_persistent.db";
  std::remove(path.c_str());

  std::printf(">>> session 1: build, replicate, index, checkpoint "
              "(file: %s)\n", path.c_str());
  {
    auto db = OpenAt(path);
    extra::Interpreter interpreter(db.get());
    Run(&interpreter,
        "define type DEPT ( name: char[20], budget: int );"
        "define type EMP  ( name: char[20], salary: int, dept: ref DEPT );"
        "create Dept: {own ref DEPT};"
        "create Emp1: {own ref EMP};"
        "insert Dept (name = \"toys\", budget = 10) as $toys;"
        "insert Dept (name = \"shoes\", budget = 20) as $shoes;"
        "insert Emp1 (name = \"fred\", salary = 120000, dept = $toys);"
        "insert Emp1 (name = \"sue\",  salary = 150000, dept = $shoes);"
        "insert Emp1 (name = \"ann\",  salary = 90000,  dept = $toys);"
        "replicate Emp1.dept.name;"
        "build btree emp_salary on Emp1.salary;"
        "checkpoint;");
  }  // database closed

  std::printf("\n>>> session 2: reopen the same file\n");
  {
    auto db = OpenAt(path);
    extra::Interpreter interpreter(db.get());
    Run(&interpreter, "show catalog;");
    std::printf("\n-- the index and the replicas survived the restart:\n");
    Run(&interpreter,
        "retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) "
        "where Emp1.salary >= 100000;");
    std::printf("\n-- and propagation still works:\n");
    Run(&interpreter,
        "replace Dept (name = \"games\") where name = \"toys\";"
        "verify Emp1.dept.name;"
        "retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary < 100000;"
        "checkpoint;");
  }
  std::printf("\ndone; database left at %s\n", path.c_str());
  return 0;
}
