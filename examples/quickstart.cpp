// Quickstart: the paper's employee database (Figure 1) through the public
// C++ API — define types, create sets, insert objects, replicate
// Emp1.dept.name (Section 3.1), and watch the query run without a
// functional join while updates propagate transparently.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <cstdlib>

#include "fieldrep/fieldrep.h"

using namespace fieldrep;

namespace {
void Check(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  // --- Open a database and declare the Figure 1 schema ---------------------
  auto db_or = Database::Open({});
  if (!db_or.ok()) Check(db_or.status());
  auto db = std::move(db_or).value();

  Check(db->DefineType(TypeDescriptor(
      "ORG", {CharAttr("name", 20), Int32Attr("budget")})));
  Check(db->DefineType(TypeDescriptor(
      "DEPT",
      {CharAttr("name", 20), Int32Attr("budget"), RefAttr("org", "ORG")})));
  Check(db->DefineType(TypeDescriptor(
      "EMP", {CharAttr("name", 20), Int32Attr("age"), Int32Attr("salary"),
              RefAttr("dept", "DEPT")})));
  Check(db->CreateSet("Org", "ORG"));
  Check(db->CreateSet("Dept", "DEPT"));
  Check(db->CreateSet("Emp1", "EMP"));
  Check(db->CreateSet("Emp2", "EMP"));

  // --- Populate -------------------------------------------------------------
  Oid acme, toys, shoes;
  Check(db->Insert("Org", Object(0, {Value("acme"), Value(int32_t{900})}),
                   &acme));
  Check(db->Insert(
      "Dept", Object(0, {Value("toys"), Value(int32_t{10}), Value(acme)}),
      &toys));
  Check(db->Insert(
      "Dept", Object(0, {Value("shoes"), Value(int32_t{20}), Value(acme)}),
      &shoes));
  struct Row {
    const char* name;
    int32_t age, salary;
    Oid dept;
  };
  for (const Row& row : {Row{"fred", 40, 120000, toys},
                         Row{"sue", 35, 150000, shoes},
                         Row{"ann", 28, 90000, toys},
                         Row{"bob", 51, 101000, shoes}}) {
    Oid oid;
    Check(db->Insert("Emp1",
                     Object(0, {Value(row.name), Value(row.age),
                                Value(row.salary), Value(row.dept)}),
                     &oid));
  }

  // --- Replicate Emp1.dept.name (Section 3.1) -------------------------------
  //
  // "objects in Emp1 can be thought of as having a 'hidden' field in which
  // a replicated value for dept.name is stored"
  Check(db->Replicate("Emp1.dept.name", {}));
  std::printf("catalog after `replicate Emp1.dept.name`:\n%s\n",
              db->catalog().Describe().c_str());

  // --- The paper's example query ---------------------------------------------
  //
  //   retrieve (Emp1.name, Emp1.salary, Emp1.dept.name)
  //   where Emp1.salary > 100000
  ReadQuery query;
  query.set_name = "Emp1";
  query.projections = {"name", "salary", "dept.name"};
  query.predicate =
      Predicate::Compare("salary", CompareOp::kGt, Value(int32_t{100000}));
  ReadResult result;
  Check(db->Retrieve(query, &result));
  std::printf("retrieve (Emp1.name, Emp1.salary, Emp1.dept.name) "
              "where Emp1.salary > 100000:\n");
  for (const auto& row : result.rows) {
    std::printf("  %-10s %8s  %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str());
  }
  std::printf("dept.name was answered %s\n\n",
              result.access[2] == ReadResult::Access::kReplicaInPlace
                  ? "from the hidden replica (no functional join!)"
                  : "by a functional join");

  // --- Updates propagate through the inverted path ----------------------------
  Check(db->Update("Dept", toys, "name", Value("games")));
  std::printf("after `replace Dept (name = \"games\") where ...toys...`:\n");
  Check(db->Retrieve(query, &result));
  for (const auto& row : result.rows) {
    std::printf("  %-10s %8s  %s\n", row[0].ToString().c_str(),
                row[1].ToString().c_str(), row[2].ToString().c_str());
  }

  // --- Verify the replication invariant ----------------------------------------
  const ReplicationPathInfo* path =
      db->catalog().FindPathBySpec("Emp1.dept.name");
  Check(db->replication().VerifyPathConsistency(path->id));
  std::printf("\nreplication path Emp1.dept.name verified consistent.\n");

  // --- Where did the bytes go? (the Section 4.2 space-overhead picture) --------
  std::printf("\n%s", db->StorageReport().c_str());
  return 0;
}
