// An interactive shell for the EXTRA-flavoured statement language.
//
//   ./build/examples/extra_repl [database-file]
//
// With a file argument the database is persistent: `checkpoint` saves, and
// restarting the shell on the same file restores everything. Statements
// end with ';' and may span lines. Ctrl-D exits.
//
// Example session (the paper's running example):
//   extra> define type DEPT ( name: char[20], budget: int );
//   extra> define type EMP ( name: char[20], salary: int, dept: ref DEPT );
//   extra> create Dept: {own ref DEPT}; create Emp1: {own ref EMP};
//   extra> insert Dept (name = "toys", budget = 10) as $d;
//   extra> insert Emp1 (name = "fred", salary = 120000, dept = $d);
//   extra> replicate Emp1.dept.name;
//   extra> retrieve (Emp1.name, Emp1.dept.name) where Emp1.salary > 100000;

#include <cstdio>
#include <iostream>
#include <string>

#include "fieldrep/fieldrep.h"

using namespace fieldrep;

int main(int argc, char** argv) {
  Database::Options options;
  if (argc > 1) options.file_path = argv[1];
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(db_or).value();
  extra::Interpreter interpreter(db.get());

  std::printf("fieldrep EXTRA shell — %s database%s\n",
              argc > 1 ? "persistent" : "in-memory",
              argc > 1 ? (std::string(" at ") + argv[1]).c_str() : "");
  std::printf("statements end with ';'; try `show catalog;`  (Ctrl-D to "
              "exit)\n");

  std::string pending;
  std::string line;
  bool interactive = true;
  while (true) {
    std::fputs(pending.empty() ? "extra> " : "  ...> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    pending += line + "\n";
    // Execute once the buffer ends with ';' (ignoring trailing blanks).
    std::string_view trimmed = TrimWhitespace(pending);
    if (trimmed.empty() || trimmed.back() != ';') continue;
    auto out = interpreter.Execute(pending);
    if (out.ok()) {
      std::fputs(out->c_str(), stdout);
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
    }
    pending.clear();
  }
  (void)interactive;
  if (argc > 1) {
    auto s = db->Checkpoint();
    if (s.ok()) {
      std::printf("\ncheckpointed to %s\n", argv[1]);
    } else {
      std::printf("\ncheckpoint failed: %s\n", s.ToString().c_str());
    }
  }
  return 0;
}
