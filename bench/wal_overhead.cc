// Quantifies the cost of write-ahead logging on a replicated update
// workload: the same 2-level in-place propagation mix runs with WAL off,
// WAL in group-commit mode (no sync per commit), and WAL in full-
// durability mode (fdatasync per commit). Reported per mode: wall time,
// device I/O (including syncs), and the log's own statistics — the price
// of making every propagation atomic (and, in sync mode, durable).
//
// File-backed so the sync cost is real; runs in the system temp dir.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "db/database.h"

namespace fieldrep::bench {
namespace {

constexpr int kOrgs = 10;
constexpr int kDepts = 100;
constexpr int kEmps = 2000;
constexpr int kUpdates = 400;

struct Fixture {
  std::unique_ptr<Database> db;
  std::vector<Oid> orgs;
  std::vector<Oid> depts;
};

Fixture Build(const std::string& path, bool wal, bool sync_on_commit) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  Database::Options options;
  options.file_path = path;
  options.enable_wal = wal;
  options.wal_sync_on_commit = sync_on_commit;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::printf("open failed: %s\n", db_or.status().ToString().c_str());
    std::exit(1);
  }
  Fixture fx;
  fx.db = std::move(db_or).value();
  Database* db = fx.db.get();

  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::printf("fixture failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(db->DefineType(TypeDescriptor("ORG", {CharAttr("name", 20),
                                              Int32Attr("budget")})));
  check(db->DefineType(TypeDescriptor("DEPT", {CharAttr("name", 20),
                                               Int32Attr("budget"),
                                               RefAttr("org", "ORG")})));
  check(db->DefineType(TypeDescriptor("EMP", {CharAttr("name", 20),
                                              Int32Attr("salary"),
                                              RefAttr("dept", "DEPT")})));
  check(db->CreateSet("Org", "ORG"));
  check(db->CreateSet("Dept", "DEPT"));
  check(db->CreateSet("Emp", "EMP"));
  fx.orgs.resize(kOrgs);
  for (int i = 0; i < kOrgs; ++i) {
    check(db->Insert("Org",
                     Object(0, {Value(StringPrintf("org%d", i)),
                                Value(int32_t{1000 * i})}),
                     &fx.orgs[i]));
  }
  fx.depts.resize(kDepts);
  for (int i = 0; i < kDepts; ++i) {
    check(db->Insert("Dept",
                     Object(0, {Value(StringPrintf("dept%d", i)),
                                Value(int32_t{10 * i}),
                                Value(fx.orgs[i % kOrgs])}),
                     &fx.depts[i]));
  }
  for (int i = 0; i < kEmps; ++i) {
    Oid oid;
    check(db->Insert("Emp",
                     Object(0, {Value(StringPrintf("emp%d", i)),
                                Value(int32_t{1000 + i}),
                                Value(fx.depts[i % kDepts])}),
                     &oid));
  }
  check(db->Replicate("Emp.dept.org.name", {}));
  check(db->Checkpoint());
  return fx;
}

void RunMode(const char* label, bool wal, bool sync_on_commit) {
  std::string path =
      StringPrintf("/tmp/fieldrep_wal_overhead_%s.db", label);
  Fixture fx = Build(path, wal, sync_on_commit);
  Database* db = fx.db.get();

  IoStats before = db->io_stats();
  auto t0 = std::chrono::steady_clock::now();
  // The mix: org renames (each propagates through ~kEmps/kOrgs head
  // replicas via the inverted path) interleaved with dept budget updates
  // (no replication, plain page write).
  for (int i = 0; i < kUpdates; ++i) {
    const Oid& org = fx.orgs[i % kOrgs];
    Status s = db->Update("Org", org, "name",
                          Value(StringPrintf("org%d_v%d", i % kOrgs, i)));
    if (!s.ok()) {
      std::printf("update failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    const Oid& dept = fx.depts[i % kDepts];
    s = db->Update("Dept", dept, "budget", Value(int32_t{i}));
    if (!s.ok()) {
      std::printf("update failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  IoStats delta = db->io_stats() - before;
  double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  std::printf("%-10s %8.1f ms  %6.1f us/upd  %s\n", label, ms,
              1000.0 * ms / (2 * kUpdates), delta.ToString().c_str());
  if (db->wal() != nullptr) {
    std::printf("           %s\n", db->wal()->stats().ToString().c_str());
  }

  Status s = db->Checkpoint();
  if (!s.ok()) {
    std::printf("checkpoint failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  fx.db.reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
}

void Run() {
  std::printf(
      "WAL overhead: %d org renames (2-level in-place propagation) + %d "
      "dept budget updates over |Emp| = %d\n\n",
      kUpdates, kUpdates, kEmps);
  RunMode("wal-off", /*wal=*/false, /*sync_on_commit=*/false);
  RunMode("wal-nosync", /*wal=*/true, /*sync_on_commit=*/false);
  RunMode("wal-sync", /*wal=*/true, /*sync_on_commit=*/true);
}

}  // namespace
}  // namespace fieldrep::bench

int main() {
  fieldrep::bench::Run();
  return 0;
}
