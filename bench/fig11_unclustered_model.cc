// Regenerates Figure 11: percentage difference in total I/O cost versus
// update probability with UNCLUSTERED clause indexes, four panels for
// sharing levels f = 1, 10, 20, 50, lines for read selectivities
// fr = .001, .002, .005 under in-place and separate replication.
//
// The vertical axis of the paper's graphs is the percentage difference in
// C_total against no replication (negative = replication wins).

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "costmodel/series.h"

namespace fieldrep {
namespace {

void Run() {
  std::printf(
      "== Figure 11: results for unclustered indexes "
      "(%% difference in C_total vs no replication) ==\n");
  std::printf(
      "   |S| = 10000, fs = .001, r = 100, s = 200, k = 20 (Figure 10 "
      "defaults)\n\n");
  CostModelParams base;
  for (double f : {1.0, 10.0, 20.0, 50.0}) {
    auto panel = GeneratePanel(base, IndexSetting::kUnclustered, f, 20);
    std::printf("%s\n",
                RenderPanel(panel, StringPrintf(
                                       "--- Unclustered Access, f = %.0f, "
                                       "|R| = %.0f ---",
                                       f, f * base.S))
                    .c_str());
  }
  // The paper's headline observations for this figure.
  CostModelParams params = base;
  params.f = 20;
  params.fr = 0.002;
  CostModel model(params);
  double crossover = CrossoverUpdateProbability(
      model, ModelStrategy::kInPlace, ModelStrategy::kSeparate,
      IndexSetting::kUnclustered);
  std::printf(
      "Observations (Section 6.6):\n"
      "  in-place vs separate crossover at f=20, fr=.002: P_update = %.3f "
      "(paper: between ~0.15 and ~0.35)\n",
      crossover);
  for (double p : {0.05, 0.10}) {
    std::printf(
        "  at P_update=%.2f, f=20, fr=.002: in-place %+.1f%%, separate "
        "%+.1f%% (paper: in-place reduces I/O ~15-45%%)\n",
        p,
        model.PercentDifference(ModelStrategy::kInPlace,
                                IndexSetting::kUnclustered, p),
        model.PercentDifference(ModelStrategy::kSeparate,
                                IndexSetting::kUnclustered, p));
  }
}

}  // namespace
}  // namespace fieldrep

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    // CSV dump for external plotting: one block per panel.
    fieldrep::CostModelParams base;
    for (double f : {1.0, 10.0, 20.0, 50.0}) {
      auto panel = fieldrep::GeneratePanel(
          base, fieldrep::IndexSetting::kUnclustered, f, 40);
      std::printf("# f=%.0f\n%s\n", f,
                  fieldrep::RenderPanelCsv(panel).c_str());
    }
    return 0;
  }
  fieldrep::Run();
  return 0;
}
