// Micro-benchmarks (google-benchmark) for the substrate the replication
// machinery sits on: B+ tree operations, heap-file access, buffer-pool
// hits, object serialization, and single-object update propagation at
// varying sharing levels.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"
#include "index/btree.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/record_file.h"

namespace fieldrep {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  MemoryDevice device;
  BufferPool pool(&device, 4096);
  BTree tree(&pool);
  if (!tree.Init().ok()) state.SkipWithError("init failed");
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert(key, Oid(1, 0, key % 100)));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  MemoryDevice device;
  BufferPool pool(&device, 4096);
  BTree tree(&pool);
  if (!tree.Init().ok()) state.SkipWithError("init failed");
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    tree.Insert(i, Oid(1, static_cast<PageId>(i / 50),
                       static_cast<uint16_t>(i % 50)))
        .ok();
  }
  Random rng(1);
  std::vector<Oid> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(
        tree.Lookup(static_cast<int64_t>(rng.Uniform(n)), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Arg(10000)->Arg(100000);

void BM_RecordFileInsert(benchmark::State& state) {
  MemoryDevice device;
  BufferPool pool(&device, 4096);
  RecordFile file(&pool, 1);
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  Oid oid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.Insert(payload, &oid));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordFileInsert)->Arg(100)->Arg(1000);

void BM_BufferPoolHit(benchmark::State& state) {
  MemoryDevice device;
  BufferPool pool(&device, 64);
  PageGuard guard;
  if (!pool.NewPage(&guard).ok()) state.SkipWithError("alloc failed");
  PageId id = guard.page_id();
  guard.Release();
  for (auto _ : state) {
    PageGuard g;
    benchmark::DoNotOptimize(pool.FetchPage(id, &g));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolHit);

void BM_ObjectSerialize(benchmark::State& state) {
  TypeDescriptor type("T", {Int32Attr("a"), CharAttr("b", 20),
                            RefAttr("c", "T"), CharAttr("fill", 80)});
  type.set_type_tag(1);
  Object object(1, {Value(int32_t{7}), Value("twenty-bytes-please"),
                    Value(Oid(1, 2, 3)), Value(std::string(80, 'f'))});
  object.SetReplicaValues(1, {Value("replicated-value")});
  std::string payload;
  for (auto _ : state) {
    payload.clear();
    benchmark::DoNotOptimize(object.Serialize(type, &payload));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_ObjectSerialize);

/// Cold sequential scan of a file-backed heap file at different read-ahead
/// windows: window 0 issues one pread per page; larger windows batch
/// contiguous runs into preadv. Logical I/O (disk_reads) is identical for
/// every window — only the physical scheduling changes.
void BM_FileScanReadAhead(benchmark::State& state) {
  const uint32_t window = static_cast<uint32_t>(state.range(0));
  const char* path = "micro_ops_scan.db";
  std::remove(path);
  {
    FileDevice device;
    if (!device.Open(path).ok()) {
      state.SkipWithError("open failed");
      return;
    }
    BufferPool pool(&device, 4096);
    pool.set_read_ahead_window(window);
    RecordFile file(&pool, 1);
    const int kRecords = 40000;  // ~1000 pages of 100-byte records
    std::string payload(100, 'x');
    Oid oid;
    for (int i = 0; i < kRecords; ++i) file.Insert(payload, &oid).ok();
    for (auto _ : state) {
      state.PauseTiming();
      pool.EvictAll().ok();
      state.ResumeTiming();
      size_t count = 0;
      file.Scan([&](const Oid&, const std::string&) {
            ++count;
            return true;
          })
          .ok();
      benchmark::DoNotOptimize(count);
    }
    state.SetItemsProcessed(state.iterations() * kRecords);
  }
  std::remove(path);
}
BENCHMARK(BM_FileScanReadAhead)->Arg(0)->Arg(16)->Arg(64);

/// Elevator write-back on a file-backed pool: dirty a random spread of
/// resident pages, then FlushAll sorts them by PageId and coalesces the
/// contiguous runs into pwritev batches.
void BM_FileFlushElevator(benchmark::State& state) {
  const char* path = "micro_ops_flush.db";
  std::remove(path);
  {
    FileDevice device;
    if (!device.Open(path).ok()) {
      state.SkipWithError("open failed");
      return;
    }
    BufferPool pool(&device, 4096);
    RecordFile file(&pool, 1);
    const int kRecords = 40000;
    std::string payload(100, 'x');
    Oid oid;
    for (int i = 0; i < kRecords; ++i) file.Insert(payload, &oid).ok();
    const PageId pages = device.page_count();
    Random rng(3);
    for (auto _ : state) {
      state.PauseTiming();
      for (int i = 0; i < 512; ++i) {
        PageGuard guard;
        if (pool.FetchPage(static_cast<PageId>(rng.Uniform(pages)), &guard)
                .ok()) {
          guard.MarkDirty();
        }
      }
      state.ResumeTiming();
      pool.FlushAll().ok();
    }
    state.SetItemsProcessed(state.iterations() * 512);
  }
  std::remove(path);
}
BENCHMARK(BM_FileFlushElevator);

/// One terminal-field update on an in-place path with `f` referencing
/// heads: the propagation fan-out the paper's update cost is made of.
void BM_PropagateUpdate(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  Database::Options db_options;
  db_options.buffer_pool_frames = 8192;
  auto db_or = Database::Open(db_options);
  if (!db_or.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto db = std::move(db_or).value();
  db->DefineType(TypeDescriptor(
                     "S", {Int32Attr("k"), CharAttr("rep", 20)}))
      .ok();
  db->DefineType(
        TypeDescriptor("R", {Int32Attr("k"), RefAttr("sref", "S")}))
      .ok();
  db->CreateSet("Sset", "S").ok();
  db->CreateSet("Rset", "R").ok();
  auto s_set = db->GetSet("Sset");
  if (s_set.ok()) s_set.value()->file().set_growth_reserve(16);
  uint16_t path_id;
  db->Replicate("Rset.sref.rep", {}, &path_id).ok();
  Oid terminal;
  db->Insert("Sset", Object(0, {Value(int32_t{1}), Value("v")}), &terminal)
      .ok();
  for (int i = 0; i < f; ++i) {
    Oid oid;
    db->Insert("Rset", Object(0, {Value(int32_t{i}), Value(terminal)}), &oid)
        .ok();
  }
  int version = 0;
  for (auto _ : state) {
    Status s = db->Update("Sset", terminal, "rep",
                          Value(StringPrintf("v%d", version++)));
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * f);
}
BENCHMARK(BM_PropagateUpdate)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

/// Warm indexed read query with replicated projections at a configurable
/// worker count (registered from main with the --threads=N value): the
/// whole working set is buffer-resident, so this isolates the query
/// engine's parallel speedup from disk scheduling. See bench/concurrent_read
/// for the full thread ladder.
void RunParallelRead(benchmark::State& state, size_t threads) {
  Database::Options db_options;
  db_options.buffer_pool_frames = 8192;
  db_options.worker_threads = threads;
  auto db_or = Database::Open(db_options);
  if (!db_or.ok()) {
    state.SkipWithError("open failed");
    return;
  }
  auto db = std::move(db_or).value();
  db->DefineType(TypeDescriptor("S", {Int32Attr("k"), CharAttr("rep", 20)}))
      .ok();
  db->DefineType(TypeDescriptor("R", {Int32Attr("k"), RefAttr("sref", "S")}))
      .ok();
  db->CreateSet("Sset", "S").ok();
  db->CreateSet("Rset", "R").ok();
  auto s_set = db->GetSet("Sset");
  if (s_set.ok()) s_set.value()->file().set_growth_reserve(16);
  auto r_set = db->GetSet("Rset");
  if (r_set.ok()) r_set.value()->file().set_growth_reserve(30);
  const int kSCount = 200;
  const int kRCount = 4000;
  std::vector<Oid> s_oids(kSCount);
  for (int i = 0; i < kSCount; ++i) {
    db->Insert("Sset",
               Object(0, {Value(static_cast<int32_t>(i)),
                          Value(StringPrintf("rep-%04d", i))}),
               &s_oids[i])
        .ok();
  }
  Random rng(11);
  for (int i = 0; i < kRCount; ++i) {
    Oid oid;
    db->Insert("Rset",
               Object(0, {Value(static_cast<int32_t>(i)),
                          Value(s_oids[rng.Uniform(kSCount)])}),
               &oid)
        .ok();
  }
  db->Replicate("Rset.sref.rep", {}).ok();
  db->BuildIndex("r_k", "Rset", "k").ok();
  ReadQuery query;
  query.set_name = "Rset";
  query.projections = {"k", "sref.rep"};
  query.predicate = Predicate::Between("k", Value(int32_t{0}),
                                       Value(int32_t{kRCount - 1}));
  ReadResult warm;
  if (!db->Retrieve(query, &warm).ok() ||
      warm.rows.size() != static_cast<size_t>(kRCount)) {
    state.SkipWithError("warmup query failed");
    return;
  }
  for (auto _ : state) {
    ReadResult result;
    Status s = db->Retrieve(query, &result);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.rows.size());
  }
  state.SetItemsProcessed(state.iterations() * kRCount);
}

}  // namespace
}  // namespace fieldrep

// Custom main: `--json[=path]` maps onto google-benchmark's native JSON
// reporter (--benchmark_out/--benchmark_out_format), and `--threads=N`
// registers BM_ParallelRead at that worker count, so every bench binary
// in this repo shares the same flags.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static std::string out_arg;
  static std::string fmt_arg = "--benchmark_out_format=json";
  size_t threads = 1;
  for (size_t i = 1; i < args.size();) {
    if (std::strncmp(args[i], "--threads=", 10) == 0) {
      int value = std::atoi(args[i] + 10);
      threads = value < 1 ? 1 : static_cast<size_t>(value);
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
  for (size_t i = 1; i < args.size(); ++i) {
    const char* arg = args[i];
    std::string path;
    if (std::strcmp(arg, "--json") == 0) {
      path = "BENCH_micro_ops.json";
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      path = arg + 7;
      if (path.empty()) path = "BENCH_micro_ops.json";
    } else {
      continue;
    }
    out_arg = "--benchmark_out=" + path;
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
    args.push_back(out_arg.data());
    args.push_back(fmt_arg.data());
    break;
  }
  const std::string parallel_name =
      fieldrep::StringPrintf("BM_ParallelRead/threads:%zu", threads);
  benchmark::RegisterBenchmark(parallel_name.c_str(),
                               [threads](benchmark::State& state) {
                                 fieldrep::RunParallelRead(state, threads);
                               });
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
