// Ablation for the Section 8 future-work item "replication techniques in
// which updates are not propagated until needed": eager propagation pays
// the full head fan-out on every update, while deferred propagation queues
// (path, terminal) pairs and pays one fan-out per distinct terminal at the
// next read — so a burst of updates against a hot terminal amortizes to a
// single propagation.
//
// Workload: U update queries hitting a small hot set of terminals, then one
// read query through the path. Reported: total page I/O for the whole
// burst + read, eager vs deferred.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/random.h"
#include "common/strings.h"

namespace fieldrep::bench {
namespace {

struct BurstResult {
  double update_io = 0;
  double read_io = 0;
};

Result<BurstResult> RunBurst(uint32_t s_count, uint32_t f, bool deferred,
                             int updates, int hot_terminals) {
  Database::Options db_options;
  db_options.buffer_pool_frames = 32768;
  FIELDREP_ASSIGN_OR_RETURN(auto db, Database::Open(db_options));
  FIELDREP_RETURN_IF_ERROR(db->DefineType(TypeDescriptor(
      "STYPE", {Int32Attr("field_s"), CharAttr("repfield", 20),
                CharAttr("filler", 176)})));
  FIELDREP_RETURN_IF_ERROR(db->DefineType(TypeDescriptor(
      "RTYPE", {Int32Attr("field_r"), RefAttr("sref", "STYPE"),
                CharAttr("filler", 88)})));
  FIELDREP_RETURN_IF_ERROR(db->CreateSet("S", "STYPE"));
  FIELDREP_RETURN_IF_ERROR(db->CreateSet("R", "RTYPE"));
  {
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * s_set, db->GetSet("S"));
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * r_set, db->GetSet("R"));
    s_set->file().set_growth_reserve(16);
    r_set->file().set_growth_reserve(30);
  }
  Random rng(5);
  std::vector<Oid> s_oids;
  for (uint32_t i = 0; i < s_count; ++i) {
    Object object(0, {Value(static_cast<int32_t>(i)),
                      Value(StringPrintf("rep-%06u", i)),
                      Value(std::string(176, 's'))});
    Oid oid;
    FIELDREP_RETURN_IF_ERROR(db->Insert("S", object, &oid));
    s_oids.push_back(oid);
  }
  const uint64_t r_count = static_cast<uint64_t>(f) * s_count;
  for (uint64_t i = 0; i < r_count; ++i) {
    Object object(0, {Value(static_cast<int32_t>(i)),
                      Value(s_oids[rng.Uniform(s_count)]),
                      Value(std::string(88, 'r'))});
    Oid oid;
    FIELDREP_RETURN_IF_ERROR(db->Insert("R", object, &oid));
  }
  ReplicateOptions rep;
  rep.deferred = deferred;
  FIELDREP_RETURN_IF_ERROR(db->Replicate("R.sref.repfield", rep));

  BurstResult result;
  // Update burst against a hot set of terminals.
  FIELDREP_RETURN_IF_ERROR(db->ColdStart());
  for (int u = 0; u < updates; ++u) {
    Oid terminal = s_oids[rng.Uniform(hot_terminals)];
    FIELDREP_RETURN_IF_ERROR(db->Update("S", terminal, "repfield",
                                        Value(StringPrintf("u%06d", u))));
  }
  FIELDREP_RETURN_IF_ERROR(db->pool().FlushAll());
  result.update_io = static_cast<double>(db->io_stats().TotalIo());

  // One read through the path — in deferred mode this triggers the flush,
  // whose cost belongs to the read.
  FIELDREP_RETURN_IF_ERROR(db->ColdStart());
  ReadQuery read;
  read.set_name = "R";
  read.projections = {"field_r", "sref.repfield"};
  ReadResult rows;
  FIELDREP_RETURN_IF_ERROR(db->Retrieve(read, &rows));
  FIELDREP_RETURN_IF_ERROR(db->pool().FlushAll());
  result.read_io = static_cast<double>(db->io_stats().TotalIo());
  return result;
}

void Run(uint32_t s_count, int updates) {
  std::printf(
      "== Ablation (Section 8 future work): eager vs deferred "
      "propagation ==\n");
  std::printf(
      "   |S| = %u, %d updates against a hot set of terminals, then one "
      "full read through the path\n\n",
      s_count, updates);
  std::printf("  %-4s %-6s %-10s %14s %12s %12s\n", "f", "hot", "mode",
              "update-burst", "read", "total");
  for (uint32_t f : {5u, 20u}) {
    for (int hot : {1, 8}) {
      for (bool deferred : {false, true}) {
        auto result = RunBurst(s_count, f, deferred, updates, hot);
        if (!result.ok()) {
          std::printf("  failed: %s\n", result.status().ToString().c_str());
          std::exit(1);
        }
        std::printf("  %-4u %-6d %-10s %14.1f %12.1f %12.1f\n", f, hot,
                    deferred ? "deferred" : "eager", result->update_io,
                    result->read_io,
                    result->update_io + result->read_io);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Expected: the deferred update burst costs roughly what no "
      "replication would\n(terminal writes only); the deferred read pays "
      "one fan-out per hot terminal,\nso the total shrinks as updates "
      "concentrate on fewer terminals.\n");
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  uint32_t s_count = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 400;
  int updates = argc > 2 ? std::atoi(argv[2]) : 64;
  fieldrep::bench::Run(s_count, updates);
  return 0;
}
