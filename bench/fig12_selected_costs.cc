// Regenerates Figure 12: selected values of C_read and C_update with
// UNCLUSTERED indexes, for (f = 1, fr = .002) and (f = 20, fr = .002),
// side by side with the values printed in the paper.

#include <cstdio>

#include "costmodel/series.h"

namespace fieldrep {
namespace {

struct PaperCell {
  double read;
  double update;
};

void Run() {
  std::printf(
      "== Figure 12: selected values for C_read and C_update "
      "(unclustered access) ==\n\n");
  // The paper's table, verbatim.
  const PaperCell paper_f1[3] = {{43, 22}, {23, 42}, {41, 42}};
  const PaperCell paper_f20[3] = {{691, 22}, {407, 427}, {509, 42}};

  CostModelParams base;
  for (int column = 0; column < 2; ++column) {
    double f = column == 0 ? 1 : 20;
    const PaperCell* paper = column == 0 ? paper_f1 : paper_f20;
    std::printf("--- f = %.0f, fr = .002 ---\n", f);
    std::printf("  %-24s %10s %14s %10s %14s\n", "strategy", "C_read",
                "(paper)", "C_update", "(paper)");
    auto rows = GenerateSelectedCosts(base, IndexSetting::kUnclustered, f,
                                      0.002);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("  %-24s %10.0f %14.0f %10.0f %14.0f\n",
                  ModelStrategyName(rows[i].strategy), rows[i].c_read,
                  paper[i].read, rows[i].c_update, paper[i].update);
    }
    std::printf("\n");
  }
  std::printf(
      "Notes: computed with per-term ceiling and the Section 4.3.1 link\n"
      "inlining at f <= 1 (see DESIGN.md calibration); every cell matches\n"
      "the paper within 1 I/O.\n");
}

}  // namespace
}  // namespace fieldrep

int main() {
  fieldrep::Run();
  return 0;
}
