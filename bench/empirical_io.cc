// Empirical validation: runs the paper's read/update query mix on the
// actual storage engine and compares the measured page I/O per query with
// the analytical cost model's prediction, for every strategy and both index
// settings.
//
// The paper's evaluation is purely analytical; this bench is the
// reproduction's extension that demonstrates the model describes a real
// engine. Every query starts from a cold buffer pool; the device I/O
// counted by the pool is exactly the model's cost unit. The model is fed
// the engine's actual serialized object sizes so both sides reason about
// the same bytes.
//
// Scaled to |S| = 2000 (a laptop-friendly tenth of the paper's 10 000) with
// fr = fs = .005, preserving the paper's selected-object counts.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/strings.h"

namespace fieldrep::bench {
namespace {

/// "in-place replication" -> "in_place_replication" for JSON metric keys.
std::string KeySafe(const char* name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ' || c == '-') c = '_';
  }
  return out;
}

void RunSetting(bool clustered, uint32_t s_count, int trials, uint32_t window,
                size_t threads, const DeviceChoice& device, BenchJson* json) {
  const double fr = 0.005;
  const double fs = 0.005;
  std::printf("--- %s indexes, |S| = %u, fr = fs = %.3f ---\n",
              clustered ? "Clustered" : "Unclustered", s_count, fr);
  std::printf("  %-12s %-24s %10s %10s %8s %10s %10s %8s\n", "f", "strategy",
              "read(meas)", "read(model)", "err%", "upd(meas)", "upd(model)",
              "err%");
  // Measured C_read/C_update per strategy at the largest f, for the
  // Figure 11-style crossover computed from *engine* numbers.
  double meas_read[3] = {0, 0, 0}, meas_update[3] = {0, 0, 0};
  uint32_t last_f = 0;
  for (uint32_t f : {1u, 5u, 10u}) {
    last_f = f;
    for (ModelStrategy strategy :
         {ModelStrategy::kNoReplication, ModelStrategy::kInPlace,
          ModelStrategy::kSeparate}) {
      WorkloadOptions options;
      options.s_count = s_count;
      options.f = f;
      options.clustered = clustered;
      options.strategy = strategy;
      options.read_ahead_window = window;
      options.worker_threads = threads;
      if (device.backend != Database::StorageBackend::kAuto) {
        // --device selects a real file-backed device; each cell gets a
        // fresh backing file (the default stays on the in-memory device).
        options.storage_backend = device.backend;
        options.o_direct = device.o_direct;
        options.file_path = StringPrintf(
            "/tmp/fieldrep_empirical_%s_%u_%d_%d.db", device.name, f,
            static_cast<int>(strategy), clustered ? 1 : 0);
        std::remove(options.file_path.c_str());
      }
      auto workload = BuildModelWorkload(options);
      if (!workload.ok()) {
        std::printf("  build failed: %s\n",
                    workload.status().ToString().c_str());
        std::exit(1);
      }
      auto measured = MeasureQueryCosts(&workload.value(), fr, fs, trials);
      if (!measured.ok()) {
        std::printf("  measurement failed: %s\n",
                    measured.status().ToString().c_str());
        std::exit(1);
      }
      CostModelParams params = ParamsFor(*workload, fr, fs);
      CostModel model(params);
      IndexSetting setting =
          clustered ? IndexSetting::kClustered : IndexSetting::kUnclustered;
      double model_read = model.ReadCost(strategy, setting);
      double model_update = model.UpdateCost(strategy, setting);
      auto err = [](double meas, double pred) {
        return pred == 0 ? 0.0 : 100.0 * (meas - pred) / pred;
      };
      std::printf("  f=%-10u %-24s %10.1f %10.0f %7.1f%% %10.1f %10.0f %7.1f%%\n",
                  f, ModelStrategyName(strategy), measured->read_io,
                  model_read, err(measured->read_io, model_read),
                  measured->update_io, model_update,
                  err(measured->update_io, model_update));
      meas_read[static_cast<int>(strategy)] = measured->read_io;
      meas_update[static_cast<int>(strategy)] = measured->update_io;
      if (json != nullptr) {
        std::string prefix =
            StringPrintf("%s.f%u.%s.", clustered ? "clustered" : "unclustered",
                         f, KeySafe(ModelStrategyName(strategy)).c_str());
        json->Add(prefix + "read_io", measured->read_io);
        json->Add(prefix + "read_io_model", model_read);
        json->Add(prefix + "update_io", measured->update_io);
        json->Add(prefix + "update_io_model", model_update);
        json->Add(prefix + "read_ms", measured->read_ms);
        json->Add(prefix + "update_ms", measured->update_ms);
        json->Add(prefix + "batched_reads", measured->batched_reads);
        json->Add(prefix + "coalesced_writes", measured->coalesced_writes);
        // Last workload's snapshot wins: the embedded telemetry shows one
        // representative fully-exercised engine, not a per-cell matrix.
        json->SetTelemetry(workload->db->MetricsJson());
      }
      if (!options.file_path.empty()) {
        workload->db.reset();  // close the device before unlinking
        std::remove(options.file_path.c_str());
      }
    }
  }
  // Engine-level Figure 11 shape at the largest f: percentage difference
  // at a small update probability, and the measured in-place/separate
  // crossover.
  auto total = [&](ModelStrategy s, double p) {
    int i = static_cast<int>(s);
    return (1 - p) * meas_read[i] + p * meas_update[i];
  };
  double crossover = -1;
  for (double p = 0; p <= 1.0; p += 0.005) {
    if (total(ModelStrategy::kInPlace, p) >=
        total(ModelStrategy::kSeparate, p)) {
      crossover = p;
      break;
    }
  }
  double p_small = 0.05;
  double base = total(ModelStrategy::kNoReplication, p_small);
  std::printf(
      "  engine-measured shape at f=%u: at P_update=%.2f in-place %+.1f%%, "
      "separate %+.1f%% vs no replication; in-place/separate crossover at "
      "P_update ~ %.2f\n\n",
      last_f, p_small,
      100 * (total(ModelStrategy::kInPlace, p_small) - base) / base,
      100 * (total(ModelStrategy::kSeparate, p_small) - base) / base,
      crossover);
}

void Run(uint32_t s_count, int trials, uint32_t window, size_t threads,
         const DeviceChoice& device, const std::string& json_path) {
  std::printf(
      "== Empirical validation: engine-measured page I/O vs the Section 6 "
      "cost model ==\n\n");
  BenchJson json("empirical_io");
  BenchJson* json_ptr = json_path.empty() ? nullptr : &json;
  if (json_ptr != nullptr) {
    json.Add("s_count", s_count);
    json.Add("trials", trials);
    json.Add("read_ahead_window", window);
    json.Add("threads", static_cast<double>(threads));
  }
  RunSetting(/*clustered=*/false, s_count, trials, window, threads, device,
             json_ptr);
  RunSetting(/*clustered=*/true, s_count, trials, window, threads, device,
             json_ptr);
  std::printf(
      "Expected shape (the paper's findings at engine level): in-place "
      "reads cheapest,\nno-replication reads dearest; in-place updates "
      "grow with f; separate updates flat.\n");
  if (json_ptr != nullptr) {
    Status s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("failed to write %s: %s\n", json_path.c_str(),
                  s.ToString().c_str());
      std::exit(1);
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  std::string json_path =
      fieldrep::bench::ConsumeJsonFlag(&argc, argv, "empirical_io");
  uint32_t window = fieldrep::bench::ConsumeWindowFlag(
      &argc, argv, fieldrep::kDefaultReadAheadWindow);
  size_t threads = fieldrep::bench::ConsumeThreadsFlag(&argc, argv, 1);
  fieldrep::bench::DeviceChoice device =
      fieldrep::bench::ConsumeDeviceFlag(&argc, argv);
  uint32_t s_count = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2000;
  int trials = argc > 2 ? std::atoi(argv[2]) : 3;
  fieldrep::bench::Run(s_count, trials, window, threads, device, json_path);
  return 0;
}
