// Ablation for Section 4.3.1 ("Eliminating Link Objects when Possible"):
// sweeps the link-object inline threshold against the sharing level f and
// reports (a) link-set space and (b) measured update-query I/O.
//
// Expectation: with f <= threshold no link objects are materialized at all
// (zero link-set pages) and propagation reads come straight from the owner
// objects; with f > threshold the link file reappears. The space saved is
// exactly the paper's argument: "The space required to store L's OID is the
// same as the space required to store x, so there is no reason not to make
// this optimization."

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

namespace fieldrep::bench {
namespace {

void Run(uint32_t s_count, int trials) {
  std::printf(
      "== Ablation (Section 4.3.1): inlining small link objects ==\n\n");
  std::printf("  %-4s %-10s %12s %14s %14s\n", "f", "threshold",
              "link pages", "link records", "update I/O");
  for (uint32_t f : {1u, 2u, 3u, 5u}) {
    for (uint32_t threshold : {0u, 1u, 2u, 4u}) {
      WorkloadOptions options;
      options.s_count = s_count;
      options.f = f;
      options.strategy = ModelStrategy::kInPlace;
      options.inline_threshold = threshold;
      auto workload = BuildModelWorkload(options);
      if (!workload.ok()) {
        std::printf("  build failed: %s\n",
                    workload.status().ToString().c_str());
        std::exit(1);
      }
      Database& db = *workload->db;
      const ReplicationPathInfo* path =
          db.catalog().FindPathBySpec("R.sref.repfield");
      const LinkInfo* link =
          db.catalog().link_registry().GetLink(path->link_sequence[0]);
      auto link_file = db.GetAuxFile(link->link_set_file);
      uint32_t link_pages =
          link_file.ok() ? link_file.value()->page_count() : 0;
      uint64_t link_records =
          link_file.ok() ? link_file.value()->record_count() : 0;
      auto measured =
          MeasureQueryCosts(&workload.value(), 0.005, 0.005, trials);
      if (!measured.ok()) {
        std::printf("  measurement failed: %s\n",
                    measured.status().ToString().c_str());
        std::exit(1);
      }
      std::printf("  %-4u %-10u %12u %14llu %14.1f\n", f, threshold,
                  link_pages, static_cast<unsigned long long>(link_records),
                  measured->update_io);
    }
    std::printf("\n");
  }
  std::printf(
      "Reading: at f <= threshold the link file is empty — the owners hold "
      "their member\nOIDs inline — and update I/O avoids the link-file "
      "read entirely.\n");
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  uint32_t s_count = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 1000;
  int trials = argc > 2 ? std::atoi(argv[2]) : 3;
  fieldrep::bench::Run(s_count, trials);
  return 0;
}
