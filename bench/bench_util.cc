#include "bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/random.h"
#include "common/strings.h"
#include "replication/link_object.h"

namespace fieldrep::bench {

namespace {
// Field bytes (excluding the 16-byte object header): the model's r and s.
constexpr uint32_t kTargetR = 100;
constexpr uint32_t kTargetS = 200;
// RTYPE: field_r(4) + sref(8) + filler
constexpr uint32_t kRFiller = kTargetR - 4 - 8;
// STYPE: field_s(4) + repfield(20) + filler
constexpr uint32_t kSFiller = kTargetS - 4 - 20;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

Result<ModelWorkload> BuildModelWorkload(const WorkloadOptions& options) {
  ModelWorkload workload;
  workload.s_count = options.s_count;
  workload.f = options.f;
  workload.clustered = options.clustered;
  workload.strategy = options.strategy;
  workload.inline_threshold = options.inline_threshold;

  Database::Options db_options;
  db_options.buffer_pool_frames = options.pool_frames;
  db_options.read_ahead_window = options.read_ahead_window;
  db_options.file_path = options.file_path;
  db_options.storage_backend = options.storage_backend;
  db_options.o_direct = options.o_direct;
  db_options.worker_threads = options.worker_threads;
  db_options.enable_telemetry = options.enable_telemetry;
  db_options.slow_query_ns = options.slow_query_ns;
  db_options.slow_query_hook = options.slow_query_hook;
  FIELDREP_ASSIGN_OR_RETURN(workload.db, Database::Open(db_options));
  Database& db = *workload.db;

  FIELDREP_RETURN_IF_ERROR(db.DefineType(TypeDescriptor(
      "STYPE", {Int32Attr("field_s"), CharAttr("repfield", 20),
                CharAttr("filler", kSFiller)})));
  FIELDREP_RETURN_IF_ERROR(db.DefineType(TypeDescriptor(
      "RTYPE", {Int32Attr("field_r"), RefAttr("sref", "STYPE"),
                CharAttr("filler", kRFiller)})));
  FIELDREP_RETURN_IF_ERROR(db.CreateSet("S", "STYPE"));
  FIELDREP_RETURN_IF_ERROR(db.CreateSet("R", "RTYPE"));

  // Replication adds hidden bytes to stored objects (replica slots on R,
  // link refs / replica refs on S); reserve page space so the growth
  // happens in place and the resulting objects-per-page match the model's
  // adjusted r and s exactly.
  if (options.strategy != ModelStrategy::kNoReplication) {
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * s_set, db.GetSet("S"));
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * r_set, db.GetSet("R"));
    if (options.strategy == ModelStrategy::kInPlace) {
      s_set->file().set_growth_reserve(16);  // LinkRef: 11-13 bytes
      r_set->file().set_growth_reserve(30);  // replica slot: 30 bytes
    } else {
      s_set->file().set_growth_reserve(15);  // ReplicaRefSlot: 15 bytes
      r_set->file().set_growth_reserve(15);
    }
  }

  Random rng(options.seed);

  // Populate S. Clustered setting: file order == key order. Unclustered:
  // keys randomly permuted over the file.
  std::vector<uint32_t> s_keys(options.s_count);
  for (uint32_t i = 0; i < options.s_count; ++i) s_keys[i] = i;
  if (!options.clustered) rng.Shuffle(&s_keys);
  workload.s_oids.reserve(options.s_count);
  for (uint32_t i = 0; i < options.s_count; ++i) {
    Object object(0, {Value(static_cast<int32_t>(s_keys[i])),
                      Value(StringPrintf("rep-%06u", s_keys[i])),
                      Value(std::string(kSFiller, 's'))});
    Oid oid;
    FIELDREP_RETURN_IF_ERROR(db.Insert("S", object, &oid));
    workload.s_oids.push_back(oid);
  }

  // Populate R: |R| = f |S|, every sref uniformly random (R and S
  // relatively unclustered, the model's key assumption), but each S object
  // referenced exactly f times (the model's sharing level) via a shuffled
  // multiset of targets.
  const uint64_t r_count = static_cast<uint64_t>(options.f) * options.s_count;
  std::vector<uint32_t> targets(r_count);
  for (uint64_t i = 0; i < r_count; ++i) {
    targets[i] = static_cast<uint32_t>(i % options.s_count);
  }
  rng.Shuffle(&targets);
  std::vector<uint32_t> r_keys(r_count);
  for (uint64_t i = 0; i < r_count; ++i) {
    r_keys[i] = static_cast<uint32_t>(i);
  }
  if (!options.clustered) rng.Shuffle(&r_keys);
  workload.r_oids.reserve(r_count);
  for (uint64_t i = 0; i < r_count; ++i) {
    Object object(0, {Value(static_cast<int32_t>(r_keys[i])),
                      Value(workload.s_oids[targets[i]]),
                      Value(std::string(kRFiller, 'r'))});
    Oid oid;
    FIELDREP_RETURN_IF_ERROR(db.Insert("R", object, &oid));
    workload.r_oids.push_back(oid);
  }

  // Replicate after populating: the bulk build lays link sets and S' out
  // in S physical order (the paper's clustering property).
  if (options.strategy != ModelStrategy::kNoReplication) {
    ReplicateOptions rep;
    rep.strategy = options.strategy == ModelStrategy::kInPlace
                       ? ReplicationStrategy::kInPlace
                       : ReplicationStrategy::kSeparate;
    rep.inline_threshold = options.inline_threshold;
    FIELDREP_RETURN_IF_ERROR(db.Replicate("R.sref.repfield", rep));
  }

  FIELDREP_RETURN_IF_ERROR(
      db.BuildIndex("r_field_r", "R", "field_r", options.clustered));
  FIELDREP_RETURN_IF_ERROR(
      db.BuildIndex("s_field_s", "S", "field_s", options.clustered));

  // Measure the actual serialized sizes the model should reason about.
  {
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * r_set, db.GetSet("R"));
    FIELDREP_ASSIGN_OR_RETURN(ObjectSet * s_set, db.GetSet("S"));
    std::string payload;
    FIELDREP_RETURN_IF_ERROR(r_set->file().Read(workload.r_oids[0], &payload));
    double r_with = static_cast<double>(payload.size()) - 16;
    FIELDREP_RETURN_IF_ERROR(s_set->file().Read(workload.s_oids[0], &payload));
    double s_with = static_cast<double>(payload.size()) - 16;
    workload.actual_r = kTargetR;
    workload.actual_s = kTargetS;
    workload.actual_k = r_with - kTargetR;  // hidden slot bytes on R
    // The hidden bytes added to S are (s_with - kTargetS); ParamsFor feeds
    // them to the model as the strategy's terminal overhead.
    workload.actual_s = kTargetS;
    workload.actual_s_overhead = s_with - kTargetS;
  }
  return workload;
}

CostModelParams ParamsFor(const ModelWorkload& workload, double fr,
                          double fs) {
  CostModelParams params;
  params.S = workload.s_count;
  params.f = workload.f;
  params.fr = fr;
  params.fs = fs;
  params.r = workload.actual_r;
  params.s = workload.actual_s;
  params.t = 100;
  params.k = 20;
  params.inline_link_threshold = workload.inline_threshold;
  switch (workload.strategy) {
    case ModelStrategy::kNoReplication:
      break;
    case ModelStrategy::kInPlace:
      params.inplace_head_bytes = workload.actual_k;
      params.inplace_terminal_bytes = workload.actual_s_overhead;
      // Engine link records: 16 fixed payload bytes + 8 per member + the
      // 4-byte page slot. The model charges h = 20 per object, so the
      // net extra beyond h is 0.
      params.link_fixed_bytes = 0;
      break;
    case ModelStrategy::kSeparate:
      params.sep_head_bytes = workload.actual_k;
      params.sep_terminal_bytes = workload.actual_s_overhead;
      // Replica records: 39 payload bytes + 4-byte slot = 43 per record;
      // net of the model's h = 20 that is 23.
      params.sprime_bytes = 23;
      params.link_fixed_bytes = 0;
      break;
  }
  return params;
}

Result<MeasuredCosts> MeasureQueryCosts(ModelWorkload* workload, double fr,
                                        double fs, int trials,
                                        uint64_t seed) {
  Database& db = *workload->db;
  Random rng(seed);
  const uint64_t r_count = workload->r_oids.size();
  const uint32_t read_span =
      std::max<uint32_t>(1, static_cast<uint32_t>(fr * r_count));
  const uint32_t update_span = std::max<uint32_t>(
      1, static_cast<uint32_t>(fs * workload->s_count));

  MeasuredCosts costs;
  for (int trial = 0; trial < trials; ++trial) {
    // --- Read query ---------------------------------------------------------
    int32_t lo = static_cast<int32_t>(rng.Uniform(r_count - read_span));
    ReadQuery read;
    read.set_name = "R";
    read.projections = {"field_r", "sref.repfield"};
    read.predicate = Predicate::Between(
        "field_r", Value(lo), Value(static_cast<int32_t>(lo + read_span - 1)));
    read.write_output = true;
    read.output_pad = 100;
    FIELDREP_RETURN_IF_ERROR(db.executor().TruncateOutput());
    FIELDREP_RETURN_IF_ERROR(db.ColdStart());
    ReadResult read_result;
    uint64_t read_start = NowNs();
    FIELDREP_RETURN_IF_ERROR(db.Retrieve(read, &read_result));
    FIELDREP_RETURN_IF_ERROR(db.pool().FlushAll());
    costs.read_ms += static_cast<double>(NowNs() - read_start) / 1e6;
    costs.read_io += static_cast<double>(db.io_stats().TotalIo());
    costs.batched_reads += static_cast<double>(db.io_stats().batched_reads);
    costs.coalesced_writes +=
        static_cast<double>(db.io_stats().coalesced_writes);

    // --- Update query --------------------------------------------------------
    int32_t ulo =
        static_cast<int32_t>(rng.Uniform(workload->s_count - update_span));
    UpdateQuery update;
    update.set_name = "S";
    update.predicate = Predicate::Between(
        "field_s", Value(ulo),
        Value(static_cast<int32_t>(ulo + update_span - 1)));
    // The model's "S.fields = newvalues, S.repfield = newvalue": touch the
    // replicated field plus another field (field_s stays fixed so index
    // keys remain unique).
    update.assignments = {
        {"repfield", Value(StringPrintf("upd-%06d", trial))},
        {"filler", Value(std::string(kSFiller, 'u'))},
    };
    FIELDREP_RETURN_IF_ERROR(db.ColdStart());
    UpdateResult update_result;
    uint64_t update_start = NowNs();
    FIELDREP_RETURN_IF_ERROR(db.Replace(update, &update_result));
    FIELDREP_RETURN_IF_ERROR(db.pool().FlushAll());
    costs.update_ms += static_cast<double>(NowNs() - update_start) / 1e6;
    costs.update_io += static_cast<double>(db.io_stats().TotalIo());
    costs.batched_reads += static_cast<double>(db.io_stats().batched_reads);
    costs.coalesced_writes +=
        static_cast<double>(db.io_stats().coalesced_writes);
  }
  costs.read_io /= trials;
  costs.update_io /= trials;
  costs.read_ms /= trials;
  costs.update_ms /= trials;
  costs.batched_reads /= trials;
  costs.coalesced_writes /= trials;
  return costs;
}

std::string Cell(double ours, double paper) {
  return StringPrintf("%7.1f (paper %5.0f)", ours, paper);
}

void BenchJson::Add(const std::string& key, double value) {
  metrics_.emplace_back(key, value);
}

void BenchJson::SetTelemetry(std::string metrics_json) {
  while (!metrics_json.empty() &&
         (metrics_json.back() == '\n' || metrics_json.back() == ' ')) {
    metrics_json.pop_back();
  }
  telemetry_json_ = std::move(metrics_json);
}

std::string BenchJson::Render() const {
  std::string out = "{\n  \"bench\": \"" + bench_name_ + "\",\n"
                    "  \"metrics\": {\n";
  for (size_t i = 0; i < metrics_.size(); ++i) {
    out += StringPrintf("    \"%s\": %.6g%s\n", metrics_[i].first.c_str(),
                        metrics_[i].second,
                        i + 1 < metrics_.size() ? "," : "");
  }
  out += "  }";
  if (!telemetry_json_.empty()) {
    out += ",\n  \"telemetry\": ";
    out += telemetry_json_;
  }
  out += "\n}\n";
  return out;
}

Status BenchJson::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  const std::string body = Render();
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

namespace {
/// Removes argv[i] from the vector, shrinking *argc.
void RemoveArg(int* argc, char** argv, int i) {
  for (int j = i; j + 1 < *argc; ++j) argv[j] = argv[j + 1];
  --*argc;
}
}  // namespace

std::string ConsumeJsonFlag(int* argc, char** argv,
                            const std::string& bench_name) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      RemoveArg(argc, argv, i);
      return "BENCH_" + bench_name + ".json";
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      std::string path = argv[i] + 7;
      RemoveArg(argc, argv, i);
      return path.empty() ? "BENCH_" + bench_name + ".json" : path;
    }
  }
  return "";
}

uint32_t ConsumeWindowFlag(int* argc, char** argv, uint32_t fallback) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--window=", 9) == 0) {
      uint32_t value = static_cast<uint32_t>(std::atoi(argv[i] + 9));
      RemoveArg(argc, argv, i);
      return value;
    }
  }
  return fallback;
}

size_t ConsumeThreadsFlag(int* argc, char** argv, size_t fallback) {
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      int value = std::atoi(argv[i] + 10);
      RemoveArg(argc, argv, i);
      return value < 1 ? 1 : static_cast<size_t>(value);
    }
  }
  return fallback;
}

DeviceChoice ConsumeDeviceFlag(int* argc, char** argv) {
  DeviceChoice choice;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--device=", 9) != 0) continue;
    const char* value = argv[i] + 9;
    if (std::strcmp(value, "file") == 0) {
      choice = {Database::StorageBackend::kFile, false, "file"};
    } else if (std::strcmp(value, "uring") == 0) {
      choice = {Database::StorageBackend::kUring, false, "uring"};
    } else if (std::strcmp(value, "uring-direct") == 0) {
      choice = {Database::StorageBackend::kUring, true, "uring-direct"};
    } else {
      std::fprintf(stderr,
                   "warning: unknown --device=%s (want file|uring|"
                   "uring-direct), keeping default\n",
                   value);
    }
    RemoveArg(argc, argv, i);
    return choice;
  }
  return choice;
}

}  // namespace fieldrep::bench
