// Regenerates Figure 13: percentage difference in total I/O cost versus
// update probability with CLUSTERED clause indexes, four panels for sharing
// levels f = 1, 10, 20, 50, lines for fr = .001, .002, .005.

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "costmodel/series.h"

namespace fieldrep {
namespace {

void Run() {
  std::printf(
      "== Figure 13: results for clustered indexes "
      "(%% difference in C_total vs no replication) ==\n");
  std::printf(
      "   |S| = 10000, fs = .001, r = 100, s = 200, k = 20 (Figure 10 "
      "defaults)\n\n");
  CostModelParams base;
  for (double f : {1.0, 10.0, 20.0, 50.0}) {
    auto panel = GeneratePanel(base, IndexSetting::kClustered, f, 20);
    std::printf("%s\n",
                RenderPanel(panel, StringPrintf(
                                       "--- Clustered Access, f = %.0f, "
                                       "|R| = %.0f ---",
                                       f, f * base.S))
                    .c_str());
  }
  CostModelParams params = base;
  params.f = 20;
  params.fr = 0.002;
  CostModel model(params);
  std::printf("Observations (Section 6.8):\n");
  for (double p : {0.05, 0.10, 0.20}) {
    std::printf(
        "  at P_update=%.2f, f=20, fr=.002: in-place %+.1f%%, separate "
        "%+.1f%% (paper: in-place reduces I/O 55-90%% at small P_update; "
        "separate 25-70%% over a wide range)\n",
        p,
        model.PercentDifference(ModelStrategy::kInPlace,
                                IndexSetting::kClustered, p),
        model.PercentDifference(ModelStrategy::kSeparate,
                                IndexSetting::kClustered, p));
  }
}

}  // namespace
}  // namespace fieldrep

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--csv") {
    // CSV dump for external plotting: one block per panel.
    fieldrep::CostModelParams base;
    for (double f : {1.0, 10.0, 20.0, 50.0}) {
      auto panel = fieldrep::GeneratePanel(
          base, fieldrep::IndexSetting::kClustered, f, 40);
      std::printf("# f=%.0f\n%s\n", f,
                  fieldrep::RenderPanelCsv(panel).c_str());
    }
    return 0;
  }
  fieldrep::Run();
  return 0;
}
