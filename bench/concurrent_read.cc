// Read-query throughput at increasing worker counts on one populated
// database (the PR's tentpole measurement): an in-place-replicated
// workload is built once, the buffer pool is warmed until the whole
// working set is resident, and the same indexed read query (projecting a
// replicated path, so no functional join) is timed at 1/2/4/8 worker
// threads via Database::SetWorkerThreads.
//
// With the data buffer-resident the numbers isolate the query engine's
// parallel speedup — sharded page table, per-frame latches, page-aligned
// range fan-out — from disk scheduling. The logical I/O counters of every
// run are asserted identical to the single-threaded plan's, which is the
// engine-level restatement of the paper's cost model being preserved: the
// parallel executor changes *when* pages are touched, never *how many*.
//
// --mixed=W switches to the mixed read/write workload (DESIGN.md §14):
// two reader threads run the same indexed read query while W writer
// threads concurrently update the replicated field on S (each update
// propagates into the in-place replicas on R). Readers take no set locks
// — the bench reports read throughput with and without the writers
// running, the writers' update rate, and the lock table's conflict
// counters. Reader row counts are still asserted (every query sees all
// |R| rows); the logical-I/O equality check is read-only-ladder only,
// since concurrent writers legitimately perturb page traffic.
//
// Usage: concurrent_read [s_count] [queries_per_step]
//                        [--threads=N] [--window=W] [--mixed[=W]]
//                        [--json[=path]]
// --threads adds one extra ladder step (e.g. --threads=16).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"

namespace fieldrep::bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Mixed read/write mode: two reader threads against `writers` concurrent
/// updaters of S.repfield (which propagates into the in-place replicas on
/// R, so every write transaction X-locks both sets). Readers never touch
/// the lock table; the interesting numbers are how little read throughput
/// drops and that all writer/writer conflicts land on the S/R locks.
int RunMixed(uint32_t s_count, int queries, int writers, uint32_t window,
             const std::string& json_path) {
  std::printf(
      "== Mixed read/write: 2 readers vs %d writer%s on the replicated "
      "field ==\n",
      writers, writers == 1 ? "" : "s");
  WorkloadOptions options;
  options.s_count = s_count;
  options.f = 5;
  options.strategy = ModelStrategy::kInPlace;
  options.read_ahead_window = window;
  auto workload = BuildModelWorkload(options);
  if (!workload.ok()) {
    std::printf("build failed: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  Database& db = *workload->db;
  const uint32_t r_count = static_cast<uint32_t>(workload->r_oids.size());

  ReadQuery query;
  query.set_name = "R";
  query.projections = {"field_r", "sref.repfield"};
  query.predicate = Predicate::Between(
      "field_r", Value(int32_t{0}), Value(static_cast<int32_t>(r_count - 1)));

  // Warm pass, as in the read-only ladder.
  ReadResult warm;
  Status s = db.Retrieve(query, &warm);
  if (!s.ok() || warm.rows.size() != r_count) {
    std::printf("warmup failed: %s (%zu rows)\n", s.ToString().c_str(),
                warm.rows.size());
    return 1;
  }

  constexpr int kReaders = 2;
  std::atomic<bool> read_failed{false};
  auto read_pass = [&]() -> double {
    const uint64_t start = NowNs();
    std::vector<std::thread> threads;
    for (int t = 0; t < kReaders; ++t) {
      threads.emplace_back([&] {
        for (int q = 0; q < queries && !read_failed.load(); ++q) {
          ReadResult result;
          Status rs = db.Retrieve(query, &result);
          if (!rs.ok() || result.rows.size() != r_count) {
            std::printf("read failed: %s (%zu rows)\n",
                        rs.ToString().c_str(), result.rows.size());
            read_failed.store(true);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double sec = static_cast<double>(NowNs() - start) / 1e9;
    return sec > 0 ? static_cast<double>(kReaders * queries) / sec : 0;
  };

  const double readonly_qps = read_pass();
  if (read_failed.load()) return 1;

  const uint64_t conflicts_before = db.lock_table().conflicts();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::atomic<bool> write_failed{false};
  std::vector<std::thread> writer_threads;
  for (int w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      int trial = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        UpdateQuery update;
        update.set_name = "S";
        update.predicate = Predicate::Compare(
            "field_s", CompareOp::kEq,
            Value(static_cast<int32_t>(
                (static_cast<uint32_t>(w) * 7919u +
                 static_cast<uint32_t>(trial)) %
                s_count)));
        update.assignments.emplace_back(
            "repfield", Value(StringPrintf("mix-%06d", trial)));
        UpdateResult result;
        Status us = db.Replace(update, &result);
        if (!us.ok()) {
          std::printf("write failed: %s\n", us.ToString().c_str());
          write_failed.store(true);
          return;
        }
        writes.fetch_add(1, std::memory_order_relaxed);
        ++trial;
      }
    });
  }
  const uint64_t mixed_start = NowNs();
  const double mixed_qps = read_pass();
  stop.store(true);
  for (auto& t : writer_threads) t.join();
  const double mixed_sec =
      static_cast<double>(NowNs() - mixed_start) / 1e9;
  if (read_failed.load() || write_failed.load()) return 1;
  const double writes_per_sec =
      mixed_sec > 0 ? static_cast<double>(writes.load()) / mixed_sec : 0;
  const uint64_t lock_conflicts =
      db.lock_table().conflicts() - conflicts_before;

  std::printf("  %-28s %12.1f queries/s\n", "read-only (2 readers):",
              readonly_qps);
  std::printf("  %-28s %12.1f queries/s (%.0f%% of read-only)\n",
              StringPrintf("with %d writer%s:", writers,
                           writers == 1 ? "" : "s")
                  .c_str(),
              mixed_qps,
              readonly_qps > 0 ? 100.0 * mixed_qps / readonly_qps : 0);
  std::printf("  %-28s %12.1f updates/s (%llu total)\n", "writer throughput:",
              writes_per_sec, static_cast<unsigned long long>(writes.load()));
  std::printf("  %-28s %12llu\n", "lock conflicts:",
              static_cast<unsigned long long>(lock_conflicts));

  BenchJson json("concurrent_read_mixed");
  json.Add("s_count", s_count);
  json.Add("queries_per_reader", queries);
  json.Add("readers", kReaders);
  json.Add("writers", writers);
  json.Add("mixed.readonly_qps", readonly_qps);
  json.Add("mixed.qps", mixed_qps);
  json.Add("mixed.read_retention",
           readonly_qps > 0 ? mixed_qps / readonly_qps : 0);
  json.Add("mixed.writes_per_sec", writes_per_sec);
  json.Add("mixed.writes", static_cast<double>(writes.load()));
  json.Add("mixed.lock_conflicts", static_cast<double>(lock_conflicts));
  json.SetTelemetry(db.MetricsJson());
  if (!json_path.empty()) {
    s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("failed to write %s: %s\n", json_path.c_str(),
                  s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int Run(uint32_t s_count, int queries, size_t extra_threads, uint32_t window,
        const std::string& json_path) {
  std::printf(
      "== Concurrent read throughput: one warm database, worker ladder ==\n");
  WorkloadOptions options;
  options.s_count = s_count;
  options.f = 5;
  options.strategy = ModelStrategy::kInPlace;
  options.read_ahead_window = window;
  auto workload = BuildModelWorkload(options);
  if (!workload.ok()) {
    std::printf("build failed: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  Database& db = *workload->db;
  const uint32_t r_count = static_cast<uint32_t>(workload->r_oids.size());

  ReadQuery query;
  query.set_name = "R";
  query.projections = {"field_r", "sref.repfield"};
  query.predicate = Predicate::Between(
      "field_r", Value(int32_t{0}), Value(static_cast<int32_t>(r_count - 1)));

  std::vector<size_t> ladder = {1, 2, 4, 8};
  if (extra_threads > 1 &&
      std::find(ladder.begin(), ladder.end(), extra_threads) == ladder.end()) {
    ladder.push_back(extra_threads);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  BenchJson json("concurrent_read");
  json.Add("s_count", s_count);
  json.Add("f", options.f);
  json.Add("queries_per_step", queries);
  json.Add("read_ahead_window", window);
  json.Add("hw_concurrency", hw);

  // Warm: one full pass leaves R, the index, and the replica bytes (all
  // in place on R) resident; |S|=2000 at f=5 is ~360 data pages against a
  // 32768-frame pool, so nothing is evicted afterwards.
  ReadResult warm;
  Status s = db.Retrieve(query, &warm);
  if (!s.ok() || warm.rows.size() != r_count) {
    std::printf("warmup failed: %s (%zu rows)\n", s.ToString().c_str(),
                warm.rows.size());
    return 1;
  }
  db.pool().ResetStats();
  ReadResult probe;
  if (!db.Retrieve(query, &probe).ok()) return 1;
  const IoStats serial_stats = db.io_stats();
  if (serial_stats.disk_reads != 0) {
    std::printf("warning: working set not buffer-resident (%llu cold reads)\n",
                static_cast<unsigned long long>(serial_stats.disk_reads));
  }

  std::printf("  |R| = %u rows per query, %d queries per step\n", r_count,
              queries);
  std::printf("  hardware concurrency: %u core%s\n", hw, hw == 1 ? "" : "s");
  const size_t max_step = *std::max_element(ladder.begin(), ladder.end());
  if (hw != 0 && hw < max_step) {
    std::printf(
        "  note: ladder tops out at %zu threads but only %u core%s "
        "available;\n  steps beyond the core count measure scheduling "
        "overhead, not speedup\n",
        max_step, hw, hw == 1 ? " is" : "s are");
  }
  std::printf("\n");
  std::printf("  %8s %12s %12s %10s\n", "threads", "ms/query", "queries/s",
              "speedup");
  double base_qps = 0;
  for (size_t threads : ladder) {
    s = db.SetWorkerThreads(threads);
    if (!s.ok()) {
      std::printf("SetWorkerThreads(%zu): %s\n", threads,
                  s.ToString().c_str());
      return 1;
    }
    db.pool().ResetStats();
    uint64_t start = NowNs();
    for (int q = 0; q < queries; ++q) {
      ReadResult result;
      s = db.Retrieve(query, &result);
      if (!s.ok() || result.rows.size() != r_count) {
        std::printf("query failed at %zu threads: %s\n", threads,
                    s.ToString().c_str());
        return 1;
      }
    }
    double elapsed_ms = static_cast<double>(NowNs() - start) / 1e6;
    // The logical plan must not change with the worker count: same hit
    // count per query, zero disk reads (warm pool) at every step.
    IoStats stats = db.io_stats();
    if (stats.disk_reads != serial_stats.disk_reads * queries ||
        stats.fetches != serial_stats.fetches * queries) {
      std::printf(
          "logical I/O diverged at %zu threads: %llu fetches / %llu reads "
          "per query, serial plan does %llu / %llu\n",
          threads, static_cast<unsigned long long>(stats.fetches / queries),
          static_cast<unsigned long long>(stats.disk_reads / queries),
          static_cast<unsigned long long>(serial_stats.fetches),
          static_cast<unsigned long long>(serial_stats.disk_reads));
      return 1;
    }
    double qps = queries / (elapsed_ms / 1e3);
    if (threads == 1) base_qps = qps;
    double speedup = base_qps > 0 ? qps / base_qps : 1.0;
    std::printf("  %8zu %12.2f %12.1f %9.2fx\n", threads,
                elapsed_ms / queries, qps, speedup);
    std::string prefix = StringPrintf("threads.%zu.", threads);
    json.Add(prefix + "ms_per_query", elapsed_ms / queries);
    json.Add(prefix + "qps", qps);
    json.Add(prefix + "speedup", speedup);
    json.Add(prefix + "fetches_per_query",
             static_cast<double>(stats.fetches / queries));
  }
  json.SetTelemetry(db.MetricsJson());
  if (!json_path.empty()) {
    s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("failed to write %s: %s\n", json_path.c_str(),
                  s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  std::string json_path =
      fieldrep::bench::ConsumeJsonFlag(&argc, argv, "concurrent_read");
  uint32_t window = fieldrep::bench::ConsumeWindowFlag(
      &argc, argv, fieldrep::kDefaultReadAheadWindow);
  size_t threads = fieldrep::bench::ConsumeThreadsFlag(&argc, argv, 1);
  int mixed_writers = 0;  // 0 = read-only ladder (default mode)
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--mixed") {
      mixed_writers = 2;
    } else if (arg.rfind("--mixed=", 0) == 0) {
      mixed_writers = std::atoi(arg.c_str() + std::strlen("--mixed="));
      if (mixed_writers < 1) mixed_writers = 1;
    } else {
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
    --i;
  }
  uint32_t s_count =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2000;
  int queries = argc > 2 ? std::atoi(argv[2]) : 20;
  if (mixed_writers > 0) {
    return fieldrep::bench::RunMixed(s_count, queries, mixed_writers, window,
                                     json_path);
  }
  return fieldrep::bench::Run(s_count, queries, threads, window, json_path);
}
