// Read-query throughput at increasing worker counts on one populated
// database (the PR's tentpole measurement): an in-place-replicated
// workload is built once, the buffer pool is warmed until the whole
// working set is resident, and the same indexed read query (projecting a
// replicated path, so no functional join) is timed at 1/2/4/8 worker
// threads via Database::SetWorkerThreads.
//
// With the data buffer-resident the numbers isolate the query engine's
// parallel speedup — sharded page table, per-frame latches, page-aligned
// range fan-out — from disk scheduling. The logical I/O counters of every
// run are asserted identical to the single-threaded plan's, which is the
// engine-level restatement of the paper's cost model being preserved: the
// parallel executor changes *when* pages are touched, never *how many*.
//
// Usage: concurrent_read [s_count] [queries_per_step]
//                        [--threads=N] [--window=W] [--json[=path]]
// --threads adds one extra ladder step (e.g. --threads=16).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/strings.h"

namespace fieldrep::bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int Run(uint32_t s_count, int queries, size_t extra_threads, uint32_t window,
        const std::string& json_path) {
  std::printf(
      "== Concurrent read throughput: one warm database, worker ladder ==\n");
  WorkloadOptions options;
  options.s_count = s_count;
  options.f = 5;
  options.strategy = ModelStrategy::kInPlace;
  options.read_ahead_window = window;
  auto workload = BuildModelWorkload(options);
  if (!workload.ok()) {
    std::printf("build failed: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  Database& db = *workload->db;
  const uint32_t r_count = static_cast<uint32_t>(workload->r_oids.size());

  ReadQuery query;
  query.set_name = "R";
  query.projections = {"field_r", "sref.repfield"};
  query.predicate = Predicate::Between(
      "field_r", Value(int32_t{0}), Value(static_cast<int32_t>(r_count - 1)));

  std::vector<size_t> ladder = {1, 2, 4, 8};
  if (extra_threads > 1 &&
      std::find(ladder.begin(), ladder.end(), extra_threads) == ladder.end()) {
    ladder.push_back(extra_threads);
  }

  const unsigned hw = std::thread::hardware_concurrency();
  BenchJson json("concurrent_read");
  json.Add("s_count", s_count);
  json.Add("f", options.f);
  json.Add("queries_per_step", queries);
  json.Add("read_ahead_window", window);
  json.Add("hw_concurrency", hw);

  // Warm: one full pass leaves R, the index, and the replica bytes (all
  // in place on R) resident; |S|=2000 at f=5 is ~360 data pages against a
  // 32768-frame pool, so nothing is evicted afterwards.
  ReadResult warm;
  Status s = db.Retrieve(query, &warm);
  if (!s.ok() || warm.rows.size() != r_count) {
    std::printf("warmup failed: %s (%zu rows)\n", s.ToString().c_str(),
                warm.rows.size());
    return 1;
  }
  db.pool().ResetStats();
  ReadResult probe;
  if (!db.Retrieve(query, &probe).ok()) return 1;
  const IoStats serial_stats = db.io_stats();
  if (serial_stats.disk_reads != 0) {
    std::printf("warning: working set not buffer-resident (%llu cold reads)\n",
                static_cast<unsigned long long>(serial_stats.disk_reads));
  }

  std::printf("  |R| = %u rows per query, %d queries per step\n", r_count,
              queries);
  std::printf("  hardware concurrency: %u core%s\n", hw, hw == 1 ? "" : "s");
  const size_t max_step = *std::max_element(ladder.begin(), ladder.end());
  if (hw != 0 && hw < max_step) {
    std::printf(
        "  note: ladder tops out at %zu threads but only %u core%s "
        "available;\n  steps beyond the core count measure scheduling "
        "overhead, not speedup\n",
        max_step, hw, hw == 1 ? " is" : "s are");
  }
  std::printf("\n");
  std::printf("  %8s %12s %12s %10s\n", "threads", "ms/query", "queries/s",
              "speedup");
  double base_qps = 0;
  for (size_t threads : ladder) {
    s = db.SetWorkerThreads(threads);
    if (!s.ok()) {
      std::printf("SetWorkerThreads(%zu): %s\n", threads,
                  s.ToString().c_str());
      return 1;
    }
    db.pool().ResetStats();
    uint64_t start = NowNs();
    for (int q = 0; q < queries; ++q) {
      ReadResult result;
      s = db.Retrieve(query, &result);
      if (!s.ok() || result.rows.size() != r_count) {
        std::printf("query failed at %zu threads: %s\n", threads,
                    s.ToString().c_str());
        return 1;
      }
    }
    double elapsed_ms = static_cast<double>(NowNs() - start) / 1e6;
    // The logical plan must not change with the worker count: same hit
    // count per query, zero disk reads (warm pool) at every step.
    IoStats stats = db.io_stats();
    if (stats.disk_reads != serial_stats.disk_reads * queries ||
        stats.fetches != serial_stats.fetches * queries) {
      std::printf(
          "logical I/O diverged at %zu threads: %llu fetches / %llu reads "
          "per query, serial plan does %llu / %llu\n",
          threads, static_cast<unsigned long long>(stats.fetches / queries),
          static_cast<unsigned long long>(stats.disk_reads / queries),
          static_cast<unsigned long long>(serial_stats.fetches),
          static_cast<unsigned long long>(serial_stats.disk_reads));
      return 1;
    }
    double qps = queries / (elapsed_ms / 1e3);
    if (threads == 1) base_qps = qps;
    double speedup = base_qps > 0 ? qps / base_qps : 1.0;
    std::printf("  %8zu %12.2f %12.1f %9.2fx\n", threads,
                elapsed_ms / queries, qps, speedup);
    std::string prefix = StringPrintf("threads.%zu.", threads);
    json.Add(prefix + "ms_per_query", elapsed_ms / queries);
    json.Add(prefix + "qps", qps);
    json.Add(prefix + "speedup", speedup);
    json.Add(prefix + "fetches_per_query",
             static_cast<double>(stats.fetches / queries));
  }
  json.SetTelemetry(db.MetricsJson());
  if (!json_path.empty()) {
    s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("failed to write %s: %s\n", json_path.c_str(),
                  s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  std::string json_path =
      fieldrep::bench::ConsumeJsonFlag(&argc, argv, "concurrent_read");
  uint32_t window = fieldrep::bench::ConsumeWindowFlag(
      &argc, argv, fieldrep::kDefaultReadAheadWindow);
  size_t threads = fieldrep::bench::ConsumeThreadsFlag(&argc, argv, 1);
  uint32_t s_count =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 2000;
  int queries = argc > 2 ? std::atoi(argv[2]) : 20;
  return fieldrep::bench::Run(s_count, queries, threads, window, json_path);
}
