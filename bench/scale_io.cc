// Larger-than-memory scale bench (DESIGN.md §15): builds a replicated
// R -> S database far bigger than the buffer pool, then drives zipfian
// point reads (batched through the prefetch path) and zipfian updates of
// the replicated field (each one fans out to its f replicas), measuring
// throughput, per-op latency percentiles, and read/write amplification.
//
// This is the workload the async io_uring backend exists for: at pool =
// 1-10% of the data, almost every batch misses and the device sees deep
// multi-page read batches (window > 1) and contiguous write-back runs.
// Compare `--device=file` with `--device=uring` / `--device=uring-direct`
// on the same preset.
//
// The *logical* I/O counters in the JSON (fetches/hits/disk_reads/
// disk_writes) are deterministic for a given preset + seed and identical
// across devices and windows (the pool's charge-on-first-fetch rule), so
// CI compares them against the committed BENCH_scale_io.json seed.
//
// Presets: --preset=ci (~30k objects, seconds), --preset=default (~250k),
// --preset=full (10M objects, needs ~2 GiB of disk and a long build).
// Flags: --pool=PCT (pool as % of data pages, default 5), --zipf=THETA
// (default 0.99), --window=N (prefetch batch, default 16), --device=...,
// --reads=N, --updates=N, --json[=PATH].

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/strings.h"

namespace fieldrep::bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Gray et al. style zipfian generator: O(n) zeta precompute once, O(1)
/// per sample. theta in (0, 1); larger = more skew. Item 0 is hottest.
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
    for (uint64_t i = 1; i <= n; ++i) zetan_ += 1.0 / std::pow(i, theta);
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  uint64_t Next(Random* rng) const {
    double u = rng->NextDouble();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < zeta2_) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  uint64_t n_;
  double theta_;
  double zetan_ = 0;
  double zeta2_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
};

struct Preset {
  const char* name;
  uint32_t s_count;     ///< |S|; |R| = f * |S|
  uint32_t f;           ///< replicas per S object
  uint64_t reads;       ///< zipfian point reads of R
  uint64_t updates;     ///< zipfian updates of S.repfield
};

constexpr Preset kPresets[] = {
    {"ci", 5000, 5, 4000, 400},
    {"default", 50000, 5, 20000, 2000},
    {"full", 2000000, 5, 200000, 20000},  // 10M+ objects
};

double Percentile(std::vector<uint64_t>* ns, double p) {
  if (ns->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(ns->size() - 1));
  std::nth_element(ns->begin(), ns->begin() + static_cast<long>(idx),
                   ns->end());
  return static_cast<double>((*ns)[idx]) / 1e3;  // microseconds
}

const Preset* FindPreset(const char* name) {
  for (const Preset& p : kPresets) {
    if (std::strcmp(p.name, name) == 0) return &p;
  }
  return nullptr;
}

int Run(const Preset& preset, uint32_t pool_pct, double theta, uint32_t window,
        const DeviceChoice& device, uint64_t reads, uint64_t updates,
        uint64_t seed, const std::string& json_path) {
  const uint64_t r_count =
      static_cast<uint64_t>(preset.f) * preset.s_count;
  std::printf(
      "== scale_io: |S|=%u f=%u (%llu objects), zipf theta=%.2f, pool=%u%%, "
      "window=%u, device=%s ==\n",
      preset.s_count, preset.f,
      static_cast<unsigned long long>(r_count + preset.s_count), theta,
      pool_pct, window, device.name);

  const std::string path =
      StringPrintf("/tmp/fieldrep_scale_io_%s.db", device.name);
  std::remove(path.c_str());

  // --- Build phase: big pool, bulk insert, replicate, checkpoint --------
  uint64_t build_start = NowNs();
  WorkloadOptions build;
  build.s_count = preset.s_count;
  build.f = preset.f;
  build.strategy = ModelStrategy::kInPlace;  // updates fan out to replicas
  build.pool_frames = 65536;
  build.read_ahead_window = window;
  build.file_path = path;
  build.storage_backend = device.backend;
  build.o_direct = device.o_direct;
  build.seed = seed;
  auto workload = BuildModelWorkload(build);
  if (!workload.ok()) {
    std::printf("build failed: %s\n", workload.status().ToString().c_str());
    return 1;
  }
  Status s = workload->db->Checkpoint();
  if (!s.ok()) {
    std::printf("checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::vector<Oid> r_oids = std::move(workload->r_oids);
  std::vector<Oid> s_oids = std::move(workload->s_oids);
  workload->db.reset();  // close, so the reopen below is cold
  double build_s = static_cast<double>(NowNs() - build_start) / 1e9;

  // --- Reopen with a pool that is pool_pct % of the data ----------------
  Database::Options reopen;
  reopen.file_path = path;
  reopen.storage_backend = device.backend;
  reopen.o_direct = device.o_direct;
  reopen.read_ahead_window = window;
  auto opened = Database::Open(reopen);
  if (!opened.ok()) {
    std::printf("reopen failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  // Fixed-point: frames were needed to learn the data size; resize by
  // reopening with the computed capacity.
  uint32_t data_pages = (*opened)->pool().device()->page_count();
  size_t pool_frames = std::max<size_t>(
      64, static_cast<size_t>(data_pages) * pool_pct / 100);
  opened->reset();
  reopen.buffer_pool_frames = pool_frames;
  opened = Database::Open(reopen);
  if (!opened.ok()) {
    std::printf("reopen failed: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  Database& db = *opened.value();
  std::printf("built in %.1fs: %u data pages, pool %zu frames (%.1f%%)\n",
              build_s, data_pages, pool_frames,
              100.0 * static_cast<double>(pool_frames) / data_pages);

  Random rng(seed + 1);
  BenchJson json("scale_io");
  json.Add("s_count", preset.s_count);
  json.Add("f", preset.f);
  json.Add("objects", static_cast<double>(r_count + preset.s_count));
  json.Add("data_pages", data_pages);
  json.Add("pool_frames", static_cast<double>(pool_frames));
  json.Add("pool_pct", pool_pct);
  json.Add("zipf_theta", theta);
  json.Add("window", window);
  json.Add("device_uring", device.backend == Database::StorageBackend::kUring);
  json.Add("build_seconds", build_s);

  // --- Read phase: zipfian point reads of R, batched by `window` --------
  {
    Zipfian zipf(r_oids.size(), theta);
    std::vector<uint64_t> lat;
    lat.reserve(reads);
    s = db.ColdStart();
    if (!s.ok()) {
      std::printf("cold start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const size_t batch = window == 0 ? 1 : window;
    std::vector<Oid> prefetch_batch;
    uint64_t phase_start = NowNs();
    for (uint64_t i = 0; i < reads;) {
      size_t n = static_cast<size_t>(
          std::min<uint64_t>(batch, reads - i));
      prefetch_batch.clear();
      for (size_t j = 0; j < n; ++j) {
        prefetch_batch.push_back(r_oids[zipf.Next(&rng)]);
      }
      if (window > 0) (void)db.pool().PrefetchOidPages(prefetch_batch);
      for (size_t j = 0; j < n; ++j) {
        Object object;
        uint64_t t0 = NowNs();
        s = db.Get("R", prefetch_batch[j], &object);
        lat.push_back(NowNs() - t0);
        if (!s.ok()) {
          std::printf("read failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      i += n;
    }
    double secs = static_cast<double>(NowNs() - phase_start) / 1e9;
    IoStats io = db.io_stats();
    // Physical bytes fetched per byte of object payload requested
    // (object ~ 128 stored bytes vs a 4 KiB page per miss).
    double logical_bytes = static_cast<double>(reads) * 128.0;
    double read_amp =
        logical_bytes == 0
            ? 0
            : static_cast<double>(io.bytes_read) / logical_bytes;
    std::printf(
        "reads:   %8llu ops in %6.2fs = %9.0f ops/s  p50 %7.1fus  "
        "p99 %8.1fus  hit%% %4.1f  amp %.1fx\n",
        static_cast<unsigned long long>(reads), secs, reads / secs,
        Percentile(&lat, 0.50), Percentile(&lat, 0.99),
        io.fetches == 0 ? 0 : 100.0 * io.hits / io.fetches, read_amp);
    json.Add("read.ops", static_cast<double>(reads));
    json.Add("read.seconds", secs);
    json.Add("read.ops_per_sec", reads / secs);
    json.Add("read.p50_us", Percentile(&lat, 0.50));
    json.Add("read.p99_us", Percentile(&lat, 0.99));
    json.Add("read.fetches", static_cast<double>(io.fetches));
    json.Add("read.hits", static_cast<double>(io.hits));
    json.Add("read.disk_reads", static_cast<double>(io.disk_reads));
    json.Add("read.batched_reads", static_cast<double>(io.batched_reads));
    json.Add("read.async_reads", static_cast<double>(io.async_reads));
    json.Add("read.bytes_read", static_cast<double>(io.bytes_read));
    json.Add("read.amplification", read_amp);
  }

  // --- Update phase: zipfian updates of S.repfield (replica fan-out) ----
  {
    Zipfian zipf(s_oids.size(), theta);
    std::vector<uint64_t> lat;
    lat.reserve(updates);
    s = db.ColdStart();
    if (!s.ok()) {
      std::printf("cold start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    uint64_t phase_start = NowNs();
    for (uint64_t i = 0; i < updates; ++i) {
      const Oid& oid = s_oids[zipf.Next(&rng)];
      uint64_t t0 = NowNs();
      s = db.Update("S", oid, "repfield",
                    Value(StringPrintf("upd-%08llu",
                                       static_cast<unsigned long long>(i))));
      lat.push_back(NowNs() - t0);
      if (!s.ok()) {
        std::printf("update failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
    Status flush = db.pool().FlushAll();
    if (!flush.ok()) {
      std::printf("flush failed: %s\n", flush.ToString().c_str());
      return 1;
    }
    double secs = static_cast<double>(NowNs() - phase_start) / 1e9;
    IoStats io = db.io_stats();
    double logical_bytes = static_cast<double>(updates) * 20.0;
    double write_amp =
        logical_bytes == 0
            ? 0
            : static_cast<double>(io.bytes_written) / logical_bytes;
    std::printf(
        "updates: %8llu ops in %6.2fs = %9.0f ops/s  p50 %7.1fus  "
        "p99 %8.1fus  amp %.1fx\n",
        static_cast<unsigned long long>(updates), secs, updates / secs,
        Percentile(&lat, 0.50), Percentile(&lat, 0.99), write_amp);
    json.Add("update.ops", static_cast<double>(updates));
    json.Add("update.seconds", secs);
    json.Add("update.ops_per_sec", updates / secs);
    json.Add("update.p50_us", Percentile(&lat, 0.50));
    json.Add("update.p99_us", Percentile(&lat, 0.99));
    json.Add("update.fetches", static_cast<double>(io.fetches));
    json.Add("update.hits", static_cast<double>(io.hits));
    json.Add("update.disk_reads", static_cast<double>(io.disk_reads));
    json.Add("update.disk_writes", static_cast<double>(io.disk_writes));
    json.Add("update.coalesced_writes",
             static_cast<double>(io.coalesced_writes));
    json.Add("update.async_writes", static_cast<double>(io.async_writes));
    json.Add("update.bytes_written", static_cast<double>(io.bytes_written));
    json.Add("update.amplification", write_amp);
  }

  json.SetTelemetry(db.MetricsJson());
  opened->reset();
  std::remove(path.c_str());

  if (!json_path.empty()) {
    s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("failed to write %s: %s\n", json_path.c_str(),
                  s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  using fieldrep::bench::kPresets;
  std::string json_path =
      fieldrep::bench::ConsumeJsonFlag(&argc, argv, "scale_io");
  uint32_t window = fieldrep::bench::ConsumeWindowFlag(&argc, argv, 16);
  fieldrep::bench::DeviceChoice device =
      fieldrep::bench::ConsumeDeviceFlag(&argc, argv);

  const fieldrep::bench::Preset* preset = &kPresets[0];
  uint32_t pool_pct = 5;
  double theta = 0.99;
  uint64_t seed = 7;
  uint64_t reads = 0, updates = 0;  // 0 = preset's value
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--preset=", 9) == 0) {
      preset = fieldrep::bench::FindPreset(argv[i] + 9);
      if (preset == nullptr) {
        std::fprintf(stderr, "unknown preset %s (want ci|default|full)\n",
                     argv[i] + 9);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--pool=", 7) == 0) {
      pool_pct = static_cast<uint32_t>(std::atoi(argv[i] + 7));
      if (pool_pct < 1) pool_pct = 1;
    } else if (std::strncmp(argv[i], "--zipf=", 7) == 0) {
      theta = std::atof(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--reads=", 8) == 0) {
      reads = static_cast<uint64_t>(std::atoll(argv[i] + 8));
    } else if (std::strncmp(argv[i], "--updates=", 10) == 0) {
      updates = static_cast<uint64_t>(std::atoll(argv[i] + 10));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  return fieldrep::bench::Run(*preset, pool_pct, theta, window, device,
                              reads == 0 ? preset->reads : reads,
                              updates == 0 ? preset->updates : updates, seed,
                              json_path);
}
