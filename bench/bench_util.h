#ifndef FIELDREP_BENCH_BENCH_UTIL_H_
#define FIELDREP_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "costmodel/cost_model.h"
#include "db/database.h"

namespace fieldrep::bench {

/// \brief The schema of the cost model (Section 6):
///
///   define type RTYPE ( field_r: int, sref: ref STYPE, filler: char[..] )
///   define type STYPE ( field_s: int, repfield: char[20], filler: char[..] )
///   create R: {own ref RTYPE}; create S: {own ref STYPE}
///   replicate R.sref.repfield
///
/// Filler lengths are chosen so the serialized field bytes match the
/// model's r = 100 and s = 200 exactly (the 16-byte object header plus the
/// 4-byte page slot equal the model's h = 20).
struct ModelWorkload {
  std::unique_ptr<Database> db;
  std::vector<Oid> r_oids;
  std::vector<Oid> s_oids;
  uint32_t s_count = 0;
  uint32_t f = 1;
  bool clustered = false;
  ModelStrategy strategy = ModelStrategy::kNoReplication;
  uint32_t inline_threshold = 1;
  /// Serialized field bytes of R/S objects after replication hooks ran
  /// (what the analytical model calls r and s), the replica overhead k on
  /// heads, and the hidden bytes added to terminal (S) objects.
  double actual_r = 0;
  double actual_s = 0;
  double actual_k = 0;
  double actual_s_overhead = 0;
};

struct WorkloadOptions {
  uint32_t s_count = 2000;  ///< |S|
  uint32_t f = 1;           ///< sharing level: |R| = f * |S|
  bool clustered = false;   ///< clause indexes clustered (file in key order)
  ModelStrategy strategy = ModelStrategy::kNoReplication;
  uint32_t inline_threshold = 1;
  size_t pool_frames = 32768;
  uint64_t seed = 7;
  /// Scan read-ahead window in pages (0 disables prefetching). Changes
  /// physical I/O scheduling only; the logical counters MeasureQueryCosts
  /// reports are identical for any window.
  uint32_t read_ahead_window = kDefaultReadAheadWindow;
  /// Backing file for the database; empty keeps the in-memory device.
  std::string file_path;
  /// Device implementation for file-backed workloads (ignored when
  /// file_path is empty): the `--device={file,uring,uring-direct}` flag.
  Database::StorageBackend storage_backend = Database::StorageBackend::kAuto;
  /// With kUring: open the backing file O_DIRECT.
  bool o_direct = false;
  /// Worker threads for parallel read execution (1 = serial engine).
  size_t worker_threads = 1;
  /// Telemetry configuration, forwarded to Database::Options. The
  /// equivalence suite builds identical workloads with tracing armed and
  /// with telemetry off and asserts identical logical I/O.
  bool enable_telemetry = true;
  uint64_t slow_query_ns = 0;
  std::function<void(const QueryTrace&)> slow_query_hook;
};

/// Builds the workload database: populates S, populates R with either
/// random (unclustered keys) or sequential key order, assigns every R
/// object a uniformly random sref (R and S relatively unclustered,
/// Section 6.2), creates the clause indexes, and sets up replication per
/// the strategy.
Result<ModelWorkload> BuildModelWorkload(const WorkloadOptions& options);

/// One measured query pair (averaged over `trials` random clause ranges):
/// read selects fr*|R| R objects and projects sref.repfield into a 100-byte
/// output row; update selects fs*|S| S objects and overwrites repfield.
/// Every query starts from a cold buffer pool and ends with a flush, so the
/// counted device I/O is exactly the model's quantity.
struct MeasuredCosts {
  double read_io = 0;    ///< logical pages (disk_reads + disk_writes)
  double update_io = 0;  ///< independent of the read-ahead window
  /// Wall-clock per query (query + flush), and the physical-scheduling
  /// counters averaged over trials — these DO change with the window.
  double read_ms = 0;
  double update_ms = 0;
  double batched_reads = 0;
  double coalesced_writes = 0;
};

Result<MeasuredCosts> MeasureQueryCosts(ModelWorkload* workload, double fr,
                                        double fs, int trials,
                                        uint64_t seed = 99);

/// Cost-model parameters mirroring a built workload (actual object sizes,
/// |S|, f, clustering), for model-vs-measured comparisons.
CostModelParams ParamsFor(const ModelWorkload& workload, double fr,
                          double fs);

/// Renders "value (paper: x)" comparison cells.
std::string Cell(double ours, double paper);

/// \brief Accumulates flat metric key/value pairs and renders them as one
/// JSON object, so every bench binary can emit machine-readable results
/// next to its human-readable table (`BENCH_<name>.json`).
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  /// Records a metric; keys keep insertion order. Dots are conventional
  /// separators ("unclustered.f5.in_place.read_io").
  void Add(const std::string& key, double value);

  /// Embeds an engine metrics snapshot (Database::MetricsJson) in the
  /// rendered document under a "telemetry" key; omitted when never set.
  void SetTelemetry(std::string metrics_json);

  /// {"bench": "<name>", "metrics": {...}, "telemetry": {...}} with
  /// stable key order.
  std::string Render() const;

  /// Writes Render() to `path`.
  Status WriteToFile(const std::string& path) const;

 private:
  std::string bench_name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::string telemetry_json_;
};

/// Recognizes `--json` / `--json=PATH` anywhere in argv and removes it
/// (so positional-argument parsing stays untouched). Returns the output
/// path, empty when the flag is absent; bare `--json` defaults to
/// "BENCH_<bench_name>.json".
std::string ConsumeJsonFlag(int* argc, char** argv,
                            const std::string& bench_name);

/// Recognizes and removes `--window=N`, returning N (or `fallback` when
/// the flag is absent).
uint32_t ConsumeWindowFlag(int* argc, char** argv, uint32_t fallback);

/// Recognizes and removes `--threads=N`, returning N clamped to >= 1 (or
/// `fallback` when the flag is absent).
size_t ConsumeThreadsFlag(int* argc, char** argv, size_t fallback);

/// The `--device=` choice of every raw-I/O bench.
struct DeviceChoice {
  Database::StorageBackend backend = Database::StorageBackend::kAuto;
  bool o_direct = false;
  /// "file", "uring", or "uring-direct" — for bench output labels.
  const char* name = "file";
};

/// Recognizes and removes `--device={file,uring,uring-direct}`. Unknown
/// values print a warning to stderr and keep the default.
DeviceChoice ConsumeDeviceFlag(int* argc, char** argv);

}  // namespace fieldrep::bench

#endif  // FIELDREP_BENCH_BENCH_UTIL_H_
