// Ablation for Section 4.3.3 ("Collapsing N-Level Inverted Paths"):
// compares the collapsed and uncollapsed forms of a 2-level in-place path
// on the two operations the paper discusses:
//
//   * propagating an update to the terminal's replicated field — the
//     collapsed path wins ("updates to O can be propagated directly to
//     Emp1 via the link Emp1.org^-1"), because it skips reading the
//     intermediate objects and their link objects;
//   * retargeting the intermediate's reference attribute — the collapsed
//     path loses ("the OIDs of E1, E2, and E3 have to be moved. In
//     contrast, in the uncollapsed version, only the OID of D would have
//     to be moved").
//
// Two shapes isolate the two effects. Shape A gives each terminal many
// intermediates (terminal updates traverse a wide middle layer). Shape B
// gives each intermediate many heads and identical terminal values, so a
// retarget is pure link maintenance (the engine skips head rewrites when
// the replicated values do not change).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/random.h"
#include "common/strings.h"
#include "db/database.h"

namespace fieldrep {
namespace {

struct World {
  std::unique_ptr<Database> db;
  std::vector<Oid> heads, mids, terms;
};

World Build(bool collapsed, uint32_t heads, uint32_t mids, uint32_t terms,
            bool uniform_values, bool cluster_links = false) {
  World world;
  Database::Options db_options;
  db_options.buffer_pool_frames = 32768;
  auto db_or = Database::Open(db_options);
  if (!db_or.ok()) std::exit(1);
  world.db = std::move(db_or).value();
  Database& db = *world.db;
  auto die = [](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  die(db.DefineType(TypeDescriptor(
      "TERM", {Int32Attr("key"), CharAttr("val", 20), CharAttr("fill", 80)})));
  die(db.DefineType(TypeDescriptor(
      "MID", {Int32Attr("key"), RefAttr("term", "TERM"),
              CharAttr("fill", 80)})));
  die(db.DefineType(TypeDescriptor(
      "HEAD", {Int32Attr("key"), RefAttr("mid", "MID"),
               CharAttr("fill", 80)})));
  die(db.CreateSet("Terms", "TERM"));
  die(db.CreateSet("Mids", "MID"));
  die(db.CreateSet("Heads", "HEAD"));
  for (auto* set_name : {"Terms", "Mids", "Heads"}) {
    auto set = db.GetSet(set_name);
    if (set.ok()) set.value()->file().set_growth_reserve(40);
  }

  // Identical data in both variants: the seed does not depend on the
  // collapse flag.
  Random rng(13);
  for (uint32_t i = 0; i < terms; ++i) {
    Oid oid;
    die(db.Insert("Terms",
                  Object(0, {Value(static_cast<int32_t>(i)),
                             Value(uniform_values ? std::string("const")
                                                  : StringPrintf("v%u", i)),
                             Value(std::string(80, 't'))}),
                  &oid));
    world.terms.push_back(oid);
  }
  for (uint32_t i = 0; i < mids; ++i) {
    Oid oid;
    die(db.Insert("Mids",
                  Object(0, {Value(static_cast<int32_t>(i)),
                             Value(world.terms[rng.Uniform(terms)]),
                             Value(std::string(80, 'm'))}),
                  &oid));
    world.mids.push_back(oid);
  }
  for (uint32_t i = 0; i < heads; ++i) {
    Oid oid;
    die(db.Insert("Heads",
                  Object(0, {Value(static_cast<int32_t>(i)),
                             Value(world.mids[rng.Uniform(mids)]),
                             Value(std::string(80, 'h'))}),
                  &oid));
    world.heads.push_back(oid);
  }
  ReplicateOptions options;
  options.collapsed = collapsed;
  options.cluster_links = cluster_links;
  options.inline_threshold = 0;  // isolate the collapse effect
  die(db.Replicate("Heads.mid.term.val", options));
  return world;
}

double MeasureTerminalUpdate(World* world, int trials) {
  Database& db = *world->db;
  Random rng(99);
  double io = 0;
  for (int t = 0; t < trials; ++t) {
    Oid term = world->terms[rng.Uniform(world->terms.size())];
    if (!db.ColdStart().ok()) std::exit(1);
    Status s = db.Update("Terms", term, "val", Value(StringPrintf("u%d", t)));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
    if (!db.pool().FlushAll().ok()) std::exit(1);
    io += static_cast<double>(db.io_stats().TotalIo());
  }
  return io / trials;
}

double MeasureRetarget(World* world, int trials) {
  Database& db = *world->db;
  Random rng(77);
  double io = 0;
  for (int t = 0; t < trials; ++t) {
    Oid mid = world->mids[rng.Uniform(world->mids.size())];
    Oid new_term = world->terms[rng.Uniform(world->terms.size())];
    if (!db.ColdStart().ok()) std::exit(1);
    Status s = db.Update("Mids", mid, "term", Value(new_term));
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      std::exit(1);
    }
    if (!db.pool().FlushAll().ok()) std::exit(1);
    io += static_cast<double>(db.io_stats().TotalIo());
  }
  return io / trials;
}

void Run(int trials) {
  std::printf(
      "== Ablation (Section 4.3.3): collapsed vs uncollapsed 2-level "
      "inverted paths ==\n\n");

  // Shape A: wide middle layer (40 intermediates per terminal), so a
  // terminal update pays for reading intermediates + their link objects in
  // the uncollapsed form.
  std::printf(
      "--- Shape A: terminal updates (4000 heads, 2000 mids, 50 terms; "
      "~40 mids reached per terminal) ---\n");
  std::printf("  %-22s %24s\n", "variant", "terminal-update I/O");
  for (int variant = 0; variant < 3; ++variant) {
    bool collapsed = variant == 1;
    bool clustered = variant == 2;
    World world = Build(collapsed, 4000, 2000, 50, /*uniform_values=*/false,
                        clustered);
    const char* name = collapsed ? "collapsed (4.3.3)"
                       : clustered ? "clustered links (4.3.2)"
                                   : "uncollapsed";
    std::printf("  %-22s %24.1f\n", name,
                MeasureTerminalUpdate(&world, trials));
  }

  // Shape B: heavy sharing per intermediate (~500 heads each) and uniform
  // terminal values, so a retarget is pure inverted-path maintenance:
  // uncollapsed moves one intermediate OID, collapsed moves ~500 tagged
  // head OIDs between page-spanning link objects.
  std::printf(
      "\n--- Shape B: intermediate retargeting (20000 heads, 40 mids, 8 "
      "terms; ~500 heads per mid; uniform terminal values) ---\n");
  std::printf("  %-14s %24s %18s\n", "variant", "retarget I/O",
              "link-set pages");
  for (bool collapsed : {false, true}) {
    World world = Build(collapsed, 20000, 40, 8, /*uniform_values=*/true);
    double io = MeasureRetarget(&world, trials);
    uint32_t link_pages = 0;
    const ReplicationPathInfo* path =
        world.db->catalog().FindPathBySpec("Heads.mid.term.val");
    for (uint8_t link_id : path->link_sequence) {
      const LinkInfo* link =
          world.db->catalog().link_registry().GetLink(link_id);
      auto file = world.db->GetAuxFile(link->link_set_file);
      if (file.ok()) link_pages += file.value()->page_count();
    }
    std::printf("  %-14s %24.1f %18u\n",
                collapsed ? "collapsed" : "uncollapsed", io, link_pages);
  }
  std::printf(
      "\nExpected: collapsed cheaper in Shape A (no intermediate/link-object "
      "reads),\ncostlier in Shape B (tagged member moves across "
      "page-spanning link objects).\n");
}

}  // namespace
}  // namespace fieldrep

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 5;
  fieldrep::Run(trials);
  return 0;
}
