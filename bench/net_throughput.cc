// Measures client/server commit throughput against the group-commit
// coordinator (DESIGN.md §12): an in-process server on a unix socket, a
// ladder of concurrent client connections each running single-row
// auto-committed replaces, in two durability modes —
//
//   sync    fdatasync inside every commit (the PR-5 behaviour)
//   group   commits flush, then batch behind one leader fdatasync
//           (WalManager::WaitDurable)
//
// Reported per rung: commits/sec, the log's sync count (the whole point:
// group mode's syncs grow sub-linearly in commits), and the batch-size
// statistics. File-backed so every fdatasync is real.
//
//   net_throughput [--max-clients N] [--commits N] [--json[=PATH]]
//
// --sets=N switches to the multi-writer workload (DESIGN.md §14): N
// concurrent clients first all hammer ONE set (every statement conflicts
// on its set lock and serializes), then each writes its OWN set — the
// sets use distinct types, so the write-lock closures are disjoint
// singletons and the transactions interleave freely, batching behind one
// group-commit fsync. Reported per rung: commits/sec plus the lock
// table's conflict/abort counters and the server's park counter. The
// disjoint rung asserts zero lock conflicts — the machine-checkable form
// of "writers on disjoint sets never serialize on locks", valid even on
// one core where wall-clock speedups are noise.
//
//   net_throughput --sets=N [--commits N] [--json[=PATH]]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "client/client.h"
#include "common/strings.h"
#include "db/database.h"
#include "net/server.h"

namespace fieldrep::bench {
namespace {

struct Rung {
  int clients = 0;
  double commits_per_sec = 0;
  uint64_t commits = 0;
  uint64_t log_syncs = 0;
  uint64_t group_batches = 0;
  uint64_t group_commits = 0;
};

std::unique_ptr<Database> BuildDatabase(const std::string& path,
                                        bool group_commit, int rows) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  Database::Options options;
  options.file_path = path;
  options.enable_wal = true;
  options.wal_sync_on_commit = true;
  options.wal_group_commit = group_commit;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::printf("open failed: %s\n", db_or.status().ToString().c_str());
    std::exit(1);
  }
  auto db = std::move(db_or).value();
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::printf("fixture failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  check(db->DefineType(TypeDescriptor(
      "ROW", {Int32Attr("key"), Int32Attr("val"), CharAttr("pad", 64)})));
  check(db->CreateSet("T", "ROW"));
  for (int i = 0; i < rows; ++i) {
    Oid oid;
    check(db->Insert(
        "T", Object(0, {Value(int32_t{i}), Value(int32_t{0}),
                        Value(StringPrintf("row%d", i))}),
        &oid));
  }
  check(db->Checkpoint());
  return db;
}

/// One client connection: `commits` auto-committed single-row replaces,
/// each durable before the next is sent.
void ClientLoop(const std::string& address, int key, int commits) {
  auto client_or = client::Client::Connect(address, "net_throughput");
  if (!client_or.ok()) {
    std::printf("connect failed: %s\n",
                client_or.status().ToString().c_str());
    std::exit(1);
  }
  auto client = std::move(client_or).value();
  for (int i = 0; i < commits; ++i) {
    UpdateQuery query;
    query.set_name = "T";
    query.predicate = Predicate::Compare("key", CompareOp::kEq,
                                         Value(int32_t{key}));
    query.assignments.emplace_back("val", Value(int32_t{i}));
    UpdateResult result;
    Status s = client->Replace(query, &result);
    if (!s.ok()) {
      std::printf("replace failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
}

/// Fixture for the multi-writer rungs: `sets` object sets T0..T{sets-1},
/// each of its own type (ROW0..), so no replication-closure or
/// type-overlap reasoning can ever link them — the write-lock sets are
/// disjoint by construction. Each set gets one row per client.
std::unique_ptr<Database> BuildMultiSetDatabase(const std::string& path,
                                                int sets, int rows_per_set) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  Database::Options options;
  options.file_path = path;
  options.enable_wal = true;
  options.wal_sync_on_commit = true;
  options.wal_group_commit = true;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::printf("open failed: %s\n", db_or.status().ToString().c_str());
    std::exit(1);
  }
  auto db = std::move(db_or).value();
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::printf("fixture failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  };
  for (int t = 0; t < sets; ++t) {
    check(db->DefineType(TypeDescriptor(
        StringPrintf("ROW%d", t),
        {Int32Attr("key"), Int32Attr("val"), CharAttr("pad", 64)})));
    check(db->CreateSet(StringPrintf("T%d", t), StringPrintf("ROW%d", t)));
    for (int i = 0; i < rows_per_set; ++i) {
      Oid oid;
      check(db->Insert(
          StringPrintf("T%d", t),
          Object(0, {Value(int32_t{i}), Value(int32_t{0}),
                     Value(StringPrintf("row%d", i))}),
          &oid));
    }
  }
  check(db->Checkpoint());
  return db;
}

/// One multi-writer client: auto-committed replaces of its own row in
/// `set_name`.
void SetClientLoop(const std::string& address, const std::string& set_name,
                   int key, int commits) {
  auto client_or = client::Client::Connect(address, "net_throughput");
  if (!client_or.ok()) {
    std::printf("connect failed: %s\n",
                client_or.status().ToString().c_str());
    std::exit(1);
  }
  auto client = std::move(client_or).value();
  for (int i = 0; i < commits; ++i) {
    UpdateQuery query;
    query.set_name = set_name;
    query.predicate = Predicate::Compare("key", CompareOp::kEq,
                                         Value(int32_t{key}));
    query.assignments.emplace_back("val", Value(int32_t{i}));
    UpdateResult result;
    Status s = client->Replace(query, &result);
    if (!s.ok()) {
      std::printf("replace failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
}

struct MultiRung {
  int sets = 0;
  int clients = 0;
  uint64_t commits = 0;
  double commits_per_sec = 0;
  uint64_t lock_conflicts = 0;
  uint64_t lock_aborts = 0;
  uint64_t parks = 0;
  uint64_t group_batches = 0;
};

/// `clients` concurrent writers spread over `sets` sets (sets == 1 is the
/// fully contended baseline; sets == clients the fully disjoint rung).
MultiRung RunMultiRung(int sets, int clients, int commits_per_client) {
  const std::string path = "/tmp/fieldrep_net_multiwriter.db";
  auto db = BuildMultiSetDatabase(path, sets, clients);

  net::ServerOptions server_options;
  server_options.address = "unix:" + path + ".sock";
  server_options.max_sessions = static_cast<size_t>(clients) + 4;
  server_options.worker_threads = 8;
  auto server_or = net::Server::Start(db.get(), server_options);
  if (!server_or.ok()) {
    std::printf("server start failed: %s\n",
                server_or.status().ToString().c_str());
    std::exit(1);
  }
  auto server = std::move(server_or).value();

  const uint64_t conflicts_before = db->lock_table().conflicts();
  const uint64_t aborts_before = db->lock_table().aborts();
  const WalStats wal_before = db->wal()->stats();
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(SetClientLoop, server->address(),
                         StringPrintf("T%d", c % sets), c,
                         commits_per_client);
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();

  MultiRung rung;
  rung.sets = sets;
  rung.clients = clients;
  rung.commits = static_cast<uint64_t>(clients) *
                 static_cast<uint64_t>(commits_per_client);
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  rung.commits_per_sec =
      sec > 0 ? static_cast<double>(rung.commits) / sec : 0;
  rung.lock_conflicts = db->lock_table().conflicts() - conflicts_before;
  rung.lock_aborts = db->lock_table().aborts() - aborts_before;
  rung.parks = server->metrics().parks.load();
  rung.group_batches = db->wal()->stats().group_batches -
                       wal_before.group_batches;

  server->Stop();
  Status s = db->Checkpoint();
  if (!s.ok()) {
    std::printf("checkpoint failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  db.reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return rung;
}

int RunMultiWriter(int sets, int commits, const std::string& json_path) {
  std::printf(
      "net_throughput --sets=%d: %d concurrent writers, contended (one "
      "set) vs disjoint (one set each), %d commits per client\n\n",
      sets, sets, commits);
  std::printf("%8s %8s %14s %12s %12s %8s %14s\n", "sets", "clients",
              "commits/sec", "conflicts", "aborts", "parks", "sync batches");

  BenchJson json("net_throughput_multiwriter");
  json.Add("commits_per_client", commits);
  json.Add("clients", sets);
  double contended_cps = 0, disjoint_cps = 0;
  uint64_t disjoint_conflicts = 0;
  for (const int rung_sets : {1, sets}) {
    MultiRung r = RunMultiRung(rung_sets, sets, commits);
    std::printf("%8d %8d %14.0f %12llu %12llu %8llu %14llu\n", r.sets,
                r.clients, r.commits_per_sec,
                static_cast<unsigned long long>(r.lock_conflicts),
                static_cast<unsigned long long>(r.lock_aborts),
                static_cast<unsigned long long>(r.parks),
                static_cast<unsigned long long>(r.group_batches));
    const std::string prefix = StringPrintf("multiwriter.sets%d.", r.sets);
    json.Add(prefix + "commits_per_sec", r.commits_per_sec);
    json.Add(prefix + "commits", static_cast<double>(r.commits));
    json.Add(prefix + "lock_conflicts",
             static_cast<double>(r.lock_conflicts));
    json.Add(prefix + "lock_aborts", static_cast<double>(r.lock_aborts));
    json.Add(prefix + "parks", static_cast<double>(r.parks));
    json.Add(prefix + "group_batches",
             static_cast<double>(r.group_batches));
    if (rung_sets == 1) {
      contended_cps = r.commits_per_sec;
    } else {
      disjoint_cps = r.commits_per_sec;
      disjoint_conflicts = r.lock_conflicts;
    }
    if (rung_sets == sets) break;  // sets == 1: a single rung.
  }
  if (contended_cps > 0 && disjoint_cps > 0) {
    std::printf("\ndisjoint/contended speedup: %.2fx\n",
                disjoint_cps / contended_cps);
    json.Add("multiwriter.speedup", disjoint_cps / contended_cps);
  }
  if (!json_path.empty()) {
    Status s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("json write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("json results written to %s\n", json_path.c_str());
  }
  // Writers on disjoint sets must never touch each other's locks; this
  // holds on any core count, unlike wall-clock speedups.
  if (sets > 1 && disjoint_conflicts != 0) {
    std::printf("FAIL: %llu lock conflicts on fully disjoint sets\n",
                static_cast<unsigned long long>(disjoint_conflicts));
    return 1;
  }
  return 0;
}

Rung RunRung(bool group_commit, int clients, int commits_per_client,
             int max_clients) {
  const std::string path = StringPrintf(
      "/tmp/fieldrep_net_throughput_%s.db", group_commit ? "group" : "sync");
  auto db = BuildDatabase(path, group_commit, max_clients);

  net::ServerOptions server_options;
  server_options.address = path + ".sock";
  server_options.address = "unix:" + server_options.address;
  server_options.max_sessions = static_cast<size_t>(clients) + 4;
  server_options.worker_threads = 8;
  auto server_or = net::Server::Start(db.get(), server_options);
  if (!server_or.ok()) {
    std::printf("server start failed: %s\n",
                server_or.status().ToString().c_str());
    std::exit(1);
  }
  auto server = std::move(server_or).value();

  const WalStats before = db->wal()->stats();
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back(ClientLoop, server->address(), c,
                         commits_per_client);
  }
  for (auto& t : threads) t.join();
  auto t1 = std::chrono::steady_clock::now();
  const WalStats after = db->wal()->stats();

  server->Stop();
  Status s = db->Checkpoint();
  if (!s.ok()) {
    std::printf("checkpoint failed: %s\n", s.ToString().c_str());
    std::exit(1);
  }
  db.reset();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());

  Rung rung;
  rung.clients = clients;
  rung.commits = static_cast<uint64_t>(clients) *
                 static_cast<uint64_t>(commits_per_client);
  const double sec = std::chrono::duration<double>(t1 - t0).count();
  rung.commits_per_sec = sec > 0 ? static_cast<double>(rung.commits) / sec
                                 : 0;
  rung.log_syncs = after.log_syncs - before.log_syncs;
  rung.group_batches = after.group_batches - before.group_batches;
  rung.group_commits = after.group_commits - before.group_commits;
  return rung;
}

int Run(int argc, char** argv) {
  std::string json_path = ConsumeJsonFlag(&argc, argv, "net_throughput");
  int max_clients = 256;
  int commits = 40;
  int sets = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--max-clients" && i + 1 < argc) {
      max_clients = std::atoi(argv[++i]);
    } else if (arg.rfind("--max-clients=", 0) == 0) {
      max_clients = std::atoi(arg.c_str() + std::strlen("--max-clients="));
    } else if (arg == "--commits" && i + 1 < argc) {
      commits = std::atoi(argv[++i]);
    } else if (arg.rfind("--commits=", 0) == 0) {
      commits = std::atoi(arg.c_str() + std::strlen("--commits="));
    } else if (arg == "--sets" && i + 1 < argc) {
      sets = std::atoi(argv[++i]);
    } else if (arg.rfind("--sets=", 0) == 0) {
      sets = std::atoi(arg.c_str() + std::strlen("--sets="));
    } else {
      std::printf("usage: net_throughput [--max-clients N] [--commits N] "
                  "[--sets N] [--json[=PATH]]\n");
      return 1;
    }
  }
  if (max_clients < 1) max_clients = 1;
  if (commits < 1) commits = 1;
  if (sets > 0) return RunMultiWriter(sets, commits, json_path);

  std::printf(
      "net_throughput: %d auto-committed replaces per client over a unix "
      "socket, sync-per-commit vs group commit\n\n", commits);
  std::printf("%8s  %-6s %14s %12s %14s %12s\n", "clients", "mode",
              "commits/sec", "log syncs", "sync batches", "avg batch");

  BenchJson json("net_throughput");
  json.Add("commits_per_client", commits);
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    for (const bool group : {false, true}) {
      Rung r = RunRung(group, clients, commits, max_clients);
      const double avg_batch =
          r.group_batches > 0
              ? static_cast<double>(r.group_commits) /
                    static_cast<double>(r.group_batches)
              : 1.0;
      std::printf("%8d  %-6s %14.0f %12llu %14llu %12.2f\n", clients,
                  group ? "group" : "sync", r.commits_per_sec,
                  static_cast<unsigned long long>(r.log_syncs),
                  static_cast<unsigned long long>(r.group_batches),
                  avg_batch);
      const std::string prefix = StringPrintf(
          "net.%s.c%d.", group ? "group" : "sync", clients);
      json.Add(prefix + "commits_per_sec", r.commits_per_sec);
      json.Add(prefix + "commits", static_cast<double>(r.commits));
      json.Add(prefix + "log_syncs", static_cast<double>(r.log_syncs));
      json.Add(prefix + "group_batches",
               static_cast<double>(r.group_batches));
      json.Add(prefix + "avg_batch", avg_batch);
    }
  }

  if (!json_path.empty()) {
    Status s = json.WriteToFile(json_path);
    if (!s.ok()) {
      std::printf("json write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\njson results written to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace fieldrep::bench

int main(int argc, char** argv) {
  return fieldrep::bench::Run(argc, argv);
}
