// Regenerates Figure 14: selected values of C_read and C_update with
// CLUSTERED indexes, for (f = 1, fr = .002) and (f = 20, fr = .002),
// side by side with the values printed in the paper.

#include <cstdio>

#include "costmodel/series.h"

namespace fieldrep {
namespace {

struct PaperCell {
  double read;
  double update;
};

void Run() {
  std::printf(
      "== Figure 14: selected values for C_read and C_update "
      "(clustered access) ==\n\n");
  const PaperCell paper_f1[3] = {{24, 4}, {4, 24}, {23, 6}};
  const PaperCell paper_f20[3] = {{316, 4}, {32, 400}, {133, 6}};

  CostModelParams base;
  for (int column = 0; column < 2; ++column) {
    double f = column == 0 ? 1 : 20;
    const PaperCell* paper = column == 0 ? paper_f1 : paper_f20;
    std::printf("--- f = %.0f, fr = .002 ---\n", f);
    std::printf("  %-24s %10s %14s %10s %14s\n", "strategy", "C_read",
                "(paper)", "C_update", "(paper)");
    auto rows =
        GenerateSelectedCosts(base, IndexSetting::kClustered, f, 0.002);
    for (size_t i = 0; i < rows.size(); ++i) {
      std::printf("  %-24s %10.0f %14.0f %10.0f %14.0f\n",
                  ModelStrategyName(rows[i].strategy), rows[i].c_read,
                  paper[i].read, rows[i].c_update, paper[i].update);
    }
    std::printf("\n");
  }
  std::printf(
      "Notes: \"the one exception is the cost of an update query with\n"
      "in-place replication, which remains large\" (Section 6.8) — visible\n"
      "above as C_update = 400 at f = 20 despite clustering.\n");
}

}  // namespace
}  // namespace fieldrep

int main() {
  fieldrep::Run();
  return 0;
}
